"""Scale features of the sweep engine: cache sizing, parallel fan-out,
branch-and-bound pruning, and incremental re-sweeps."""

import numpy as np
import pytest

from repro.baselines import predict_kernel_only_us
from repro.e2e import collect_plan, plan_kernels, predict_e2e
from repro.multigpu.topology import Topology
from repro.overheads import OverheadDatabase
from repro.perfmodels import KernelPerfModel, PerfModelRegistry
from repro.sweep import (
    SweepEngine,
    SweepResult,
    lower_bound_us,
    parallel_sweep,
    plan_lower_bounds_us,
    sweep_batch_sizes,
)

BATCHES = [128, 256, 512, 1024, 2048, 3072]


def clone_registry(registry, cache_size):
    """Fresh registry (own cache) sharing the session's trained models."""
    clone = PerfModelRegistry(cache_size=cache_size)
    for kernel_type in registry.kernel_types:
        clone.register(registry.model_for(kernel_type))
    return clone


@pytest.fixture()
def engine(registry, overhead_db):
    return SweepEngine(
        registries={"V100": registry},
        overhead_dbs={"indiv": overhead_db},
    )


class TestCacheThrashFix:
    def test_auto_size_keeps_hit_rate_high_on_oversized_grid(
        self, dlrm_graph, registry, overhead_db
    ):
        """A grid population larger than the cache bound must not thrash.

        With auto-sizing, the bound grows to the deduplicated
        population, the chunked precompute warms it once, and every
        per-point lookup hits.  With auto-sizing off and a small bound,
        the same sweep degenerates to LRU sequential-scan thrash.
        """
        # Four kernel-multiset-preserving transforms (labels of the
        # identity — stand-ins for reorders): the grid re-looks-up the
        # same kernels, which is exactly where a warm cache pays.
        transforms = {t: (lambda g: g) for t in ("a", "b", "c", "d")}
        population = len(set(plan_kernels(collect_plan(dlrm_graph))))
        small = clone_registry(registry, cache_size=max(population // 8, 4))
        assert small.cache_info().max_size < population

        sized = sweep_batch_sizes(
            dlrm_graph, 512, BATCHES, small, overhead_db,
            transforms=transforms,
        )
        assert small.cache_info().max_size >= population
        info = sized.merged_cache_info()
        assert info.hit_rate >= 0.9
        # The contract behind the rate: every distinct kernel of the
        # whole grid is predicted exactly once — misses equal the
        # entries the auto-sized cache retains (nothing was evicted).
        assert info.misses == info.size

        thrash = clone_registry(registry, cache_size=max(population // 8, 4))
        thrashed = sweep_batch_sizes(
            dlrm_graph, 512, BATCHES, thrash, overhead_db,
            transforms=transforms, auto_size_cache=False,
        )
        assert thrash.cache_info().max_size < population
        assert thrashed.merged_cache_info().hit_rate < info.hit_rate

    def test_zero_cache_registry_stays_disabled(
        self, dlrm_graph, registry, overhead_db
    ):
        uncached = clone_registry(registry, cache_size=0)
        result = sweep_batch_sizes(
            dlrm_graph, 512, [256, 512], uncached, overhead_db
        )
        assert uncached.cache_info().max_size == 0
        assert uncached.cache_info().size == 0
        assert len(result) == 2

    def test_telemetry_is_per_run_delta(
        self, dlrm_graph, registry, overhead_db
    ):
        """A result reports its own hits/misses, not the cache's life."""
        warm = clone_registry(registry, cache_size=1 << 16)
        sweep_batch_sizes(dlrm_graph, 512, [256], warm, overhead_db)
        again = sweep_batch_sizes(
            dlrm_graph, 512, [256], warm, overhead_db, gpu="V100"
        )
        info = again.cache_info["V100"]
        assert info.misses == 0
        assert info.hits > 0
        assert info.hit_rate == 1.0

    def test_register_invalidates_only_its_type(self, registry, dlrm_graph):
        fresh = clone_registry(registry, cache_size=1 << 16)
        kernels = plan_kernels(collect_plan(dlrm_graph))
        fresh.predict_many(kernels)
        size_before = fresh.cache_info().size
        target = kernels[0].kernel_type
        of_type = len(
            {k for k in kernels if k.kernel_type == target}
        )
        assert 0 < of_type < size_before
        fresh.register(fresh.model_for(target))
        assert fresh.cache_info().size == size_before - of_type
        misses_before = fresh.cache_info().misses
        fresh.predict_many(kernels)
        # Exactly the invalidated type re-predicts; everything else hits.
        assert fresh.cache_info().misses == misses_before + of_type


class TestParallelSweep:
    def test_byte_identical_to_serial(self, engine, dlrm_graph):
        serial = engine.run(dlrm_graph, 512, BATCHES)
        for workers in (1, 3):
            fanned = parallel_sweep(
                engine, dlrm_graph, 512, BATCHES, workers=workers
            )
            assert fanned.to_json() == serial.to_json()

    def test_byte_identical_with_pruning_and_fingerprints(
        self, engine, dlrm_graph
    ):
        cutoff = engine.run(dlrm_graph, 512, BATCHES).records[
            len(BATCHES) // 2
        ].prediction.total_us
        serial = engine.run(
            dlrm_graph, 512, BATCHES, cutoff_us=cutoff, fingerprints=True
        )
        fanned = parallel_sweep(
            engine, dlrm_graph, 512, BATCHES,
            workers=2, cutoff_us=cutoff, fingerprints=True,
        )
        assert fanned.to_json() == serial.to_json()
        assert fanned.pruned_points == serial.pruned_points

    def test_merged_cache_telemetry(self, registry, overhead_db, dlrm_graph):
        fresh = clone_registry(registry, cache_size=1 << 16)
        engine = SweepEngine(
            registries={"V100": fresh}, overhead_dbs={"indiv": overhead_db}
        )
        result = parallel_sweep(engine, dlrm_graph, 512, BATCHES, workers=2)
        info = result.merged_cache_info()
        # Parent precompute misses once per distinct kernel (the cache
        # retains them all); worker walks run on inherited hits, whose
        # forked counters made it back into the merged telemetry.
        assert info.misses == info.size
        assert info.hits > 0

    def test_duplicate_batches_rejected(self, engine, dlrm_graph):
        with pytest.raises(ValueError, match="duplicate batch sizes"):
            parallel_sweep(engine, dlrm_graph, 512, [256, 512, 256])


class TestPruning:
    def test_lower_bound_is_admissible(
        self, dlrm_graph, registry, overhead_db
    ):
        plan = collect_plan(dlrm_graph)
        bound = lower_bound_us(plan, registry)
        direct = predict_e2e(dlrm_graph, registry, overhead_db)
        assert 0 < bound <= direct.total_us
        # Single-stream graphs reduce to the kernel-only baseline.
        assert bound == pytest.approx(
            predict_kernel_only_us(dlrm_graph, registry)
        )

    def test_vectorized_bounds_match_direct(self, engine, dlrm_graph, registry):
        labeled_plans = engine._prepare(dlrm_graph, 512, BATCHES)
        plans = [plan for _, _, plan in labeled_plans]
        kernels = [k for plan in plans for k in plan_kernels(plan)]
        times = registry.predict_many(kernels)
        bounds = plan_lower_bounds_us(plans, times)
        assert bounds.shape == (len(plans),)
        for plan, bound in zip(plans, bounds):
            assert bound == pytest.approx(lower_bound_us(plan, registry))

    def test_misaligned_times_rejected(self, engine, dlrm_graph, registry):
        labeled_plans = engine._prepare(dlrm_graph, 512, [256])
        plans = [plan for _, _, plan in labeled_plans]
        with pytest.raises(ValueError, match="misaligned"):
            plan_lower_bounds_us(plans, np.zeros(3))

    def test_never_drops_a_feasible_point(self, engine, dlrm_graph):
        full = engine.run(dlrm_graph, 512, BATCHES)
        cutoff = sorted(r.prediction.total_us for r in full)[
            len(BATCHES) // 2
        ]
        pruned = engine.run(dlrm_graph, 512, BATCHES, cutoff_us=cutoff)
        assert pruned.pruned > 0
        assert len(pruned) + pruned.pruned == len(full)
        kept = {r.point: r for r in pruned}
        for record in full:
            if record.prediction.total_us <= cutoff:
                assert kept[record.point].prediction == record.prediction
        # Every pruned point is provably infeasible.
        by_point = {r.point: r for r in full}
        for point in pruned.pruned_points:
            assert by_point[point].prediction.total_us > cutoff


class TestIncrementalSweep:
    def test_save_load_roundtrip(self, engine, dlrm_graph, tmp_path):
        result = engine.run(dlrm_graph, 512, BATCHES, fingerprints=True)
        path = tmp_path / "sweep.json"
        result.save(path)
        loaded = SweepResult.load(path)
        assert loaded.to_json() == result.to_json()
        assert [r.fingerprint for r in loaded] == [
            r.fingerprint for r in result
        ]
        assert all(r.fingerprint for r in loaded)

    def test_unchanged_grid_reuses_everything(
        self, engine, dlrm_graph, tmp_path
    ):
        first = engine.run(dlrm_graph, 512, BATCHES, fingerprints=True)
        path = tmp_path / "sweep.json"
        first.save(path)
        second = engine.run_incremental(
            dlrm_graph, 512, BATCHES, SweepResult.load(path)
        )
        assert second.reused == len(first)
        assert second.invalidated == 0
        assert second.to_json() == first.to_json()

    def test_added_batches_evaluate_only_the_new_points(
        self, engine, dlrm_graph
    ):
        first = engine.run(dlrm_graph, 512, BATCHES, fingerprints=True)
        grown = BATCHES + [4096, 8192]
        second = engine.run_incremental(dlrm_graph, 512, grown, first)
        assert second.reused == len(BATCHES)
        assert second.invalidated == 2
        assert len(second) == len(grown)
        # Grid order is preserved across reused and fresh records.
        assert [r.point.batch_size for r in second] == grown

    def test_changed_db_invalidates_only_its_slice(
        self, registry, overhead_db, dlrm_graph
    ):
        fallback_only = OverheadDatabase({})
        before = SweepEngine(
            registries={"V100": registry},
            overhead_dbs={"indiv": overhead_db, "alt": overhead_db},
        ).run(dlrm_graph, 512, BATCHES, fingerprints=True)
        after = SweepEngine(
            registries={"V100": registry},
            overhead_dbs={"indiv": overhead_db, "alt": fallback_only},
        ).run_incremental(dlrm_graph, 512, BATCHES, before)
        assert after.reused == len(BATCHES)  # the untouched indiv slice
        assert after.invalidated == len(BATCHES)
        changed = [r for r in after if r.point.overheads == "alt"]
        prior = {r.point: r for r in before}
        assert all(
            r.prediction != prior[r.point].prediction for r in changed
        )

    def test_unrelated_model_swap_does_not_invalidate(
        self, registry, overhead_db, dlrm_graph
    ):
        """Fingerprints select only the kernel types a plan dispatches."""
        used = {
            k.kernel_type
            for k in plan_kernels(collect_plan(dlrm_graph))
        }
        unused = [t for t in registry.kernel_types if t not in used]
        if not unused:
            pytest.skip("every registered type is used by the graph")
        swapped = clone_registry(registry, cache_size=1 << 16)
        swapped.register(_Doubled(registry.model_for(unused[0])))
        first = SweepEngine(
            registries={"V100": registry}, overhead_dbs={"d": overhead_db}
        ).run(dlrm_graph, 512, BATCHES, fingerprints=True)
        second = SweepEngine(
            registries={"V100": swapped}, overhead_dbs={"d": overhead_db}
        ).run_incremental(dlrm_graph, 512, BATCHES, first)
        assert second.reused == len(first)

    def test_used_model_swap_invalidates(
        self, registry, overhead_db, dlrm_graph
    ):
        used = sorted(
            {k.kernel_type for k in plan_kernels(collect_plan(dlrm_graph))}
        )
        swapped = clone_registry(registry, cache_size=1 << 16)
        swapped.register(_Doubled(registry.model_for(used[0])))
        first = SweepEngine(
            registries={"V100": registry}, overhead_dbs={"d": overhead_db}
        ).run(dlrm_graph, 512, BATCHES, fingerprints=True)
        second = SweepEngine(
            registries={"V100": swapped}, overhead_dbs={"d": overhead_db}
        ).run_incremental(dlrm_graph, 512, BATCHES, first)
        assert second.reused == 0
        assert second.invalidated == len(first)


class _Doubled(KernelPerfModel):
    """Test double: wraps a trained model, doubling its predictions."""

    def __init__(self, inner: KernelPerfModel) -> None:
        self.inner = inner
        self.kernel_type = inner.kernel_type

    def predict_us(self, params) -> float:
        """Twice the wrapped model's prediction."""
        return 2.0 * self.inner.predict_us(params)


class TestDuplicateAxes:
    def test_duplicate_batch_sizes_rejected(self, engine, dlrm_graph):
        with pytest.raises(ValueError, match=r"duplicate batch sizes.*512"):
            engine.run(dlrm_graph, 512, [256, 512, 512])

    def test_duplicate_topology_shapes_rejected(self, engine):
        from repro.models.dlrm import DLRM_DEFAULT
        from repro.multigpu import build_multi_gpu_dlrm_plan

        plans = {"x4": build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 4)}
        with pytest.raises(ValueError, match="describe"):
            engine.run_multi_gpu(
                plans,
                lambda t: None,
                topologies={
                    "a": Topology(num_nodes=2, gpus_per_node=2),
                    "b": Topology(num_nodes=2, gpus_per_node=2),
                },
            )
