"""Capacity planner + SLO latency-model unit tests."""

from __future__ import annotations

import json
import math

import pytest

from repro.capacity import (
    VALIDATE_SIMULATE,
    CandidateFleet,
    CapacityPlan,
    CapacityPlanner,
    ServingTarget,
    percentile_factor,
    plan_capacity,
    plans_to_json,
    predict_percentile_latency,
    rank_plans,
    replica_capacity_qps,
    replica_utilization,
)
from repro.models.dlrm import DLRM_DEFAULT
from repro.multigpu import (
    NVLINK,
    CollectiveModel,
    GroundTruthCollectives,
    GroundTruthTopologyCollectives,
    TopologyCollectiveModel,
)
from repro.sweep import SweepEngine


class TestServingTarget:
    def test_from_ms(self):
        target = ServingTarget.from_ms(100_000, 2.0, 95.0)
        assert target.latency_slo_us == 2000.0
        assert target.percentile == 95.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"qps": 0, "latency_slo_us": 1000},
            {"qps": 1000, "latency_slo_us": 0},
            {"qps": 1000, "latency_slo_us": 1000, "percentile": 100.0},
            {"qps": 1000, "latency_slo_us": 1000, "percentile": 0.0},
        ],
    )
    def test_invalid_targets_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServingTarget(**kwargs)


class TestLatencyModel:
    def test_batch_one_has_no_fill_wait(self):
        lat = predict_percentile_latency(500.0, 1, 1000.0)
        assert lat.fill_us == 0.0
        assert lat.service_us == 500.0

    def test_fill_grows_with_batch(self):
        lats = [
            predict_percentile_latency(500.0, b, 10_000.0).fill_us
            for b in (1, 8, 64)
        ]
        assert lats == sorted(lats)
        assert lats[0] < lats[-1]

    def test_queue_wait_explodes_at_saturation(self):
        # rho = qps/1e6 * service / batch; saturate with qps > batch/service.
        saturated = predict_percentile_latency(1000.0, 1, 2000.0)
        assert math.isinf(saturated.queue_us)
        assert math.isinf(saturated.total_us)

    def test_queue_wait_monotone_in_load(self):
        waits = [
            predict_percentile_latency(1000.0, 1, qps).queue_us
            for qps in (100.0, 400.0, 800.0)
        ]
        assert waits == sorted(waits)

    def test_higher_percentile_waits_longer(self):
        p50 = predict_percentile_latency(1000.0, 4, 2000.0, percentile=50.0)
        p99 = predict_percentile_latency(1000.0, 4, 2000.0, percentile=99.0)
        assert p99.queue_us > p50.queue_us
        assert percentile_factor(99.0) > percentile_factor(50.0)

    def test_saturation_pinned_across_rho_one(self):
        # The P-K mean wait turns negative past rho = 1; the model must
        # return an explicit infeasible marker instead.  Pin the three
        # sides of the boundary: rho = 0.99 / 1.0 / 1.01.
        service_us = 1000.0
        almost = predict_percentile_latency(service_us, 1, 990.0)
        assert replica_utilization(service_us, 1, 990.0) == pytest.approx(
            0.99
        )
        assert not almost.saturated
        assert almost.queue_us > 0.0
        assert math.isfinite(almost.total_us)
        for qps in (1000.0, 1010.0):
            lat = predict_percentile_latency(service_us, 1, qps)
            assert lat.saturated
            assert math.isinf(lat.queue_us)
            assert math.isinf(lat.total_us)
            assert lat.queue_us > 0  # never the negative extrapolation

    def test_saturated_property_tracks_queue_divergence(self):
        finite = predict_percentile_latency(500.0, 4, 1000.0)
        assert not finite.saturated
        assert finite.total_us == pytest.approx(
            finite.fill_us + finite.queue_us + finite.service_us
        )

    def test_utilization_and_capacity_are_inverses(self):
        capacity = replica_capacity_qps(500.0, 32, max_utilization=0.8)
        assert replica_utilization(500.0, 32, capacity) == pytest.approx(0.8)

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_invalid_service_time_rejected(self, bad):
        with pytest.raises(ValueError):
            replica_utilization(bad, 32, 1000.0)


class TestCandidateFleet:
    def test_label(self):
        assert CandidateFleet("A100", gpus_per_replica=2).label == "A100x2"

    def test_multinode_label_and_shape(self):
        fleet = CandidateFleet("A100", gpus_per_replica=8, nodes=2)
        assert fleet.label == "A100x8@2n"
        assert fleet.gpus_per_node == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"gpus_per_replica": 0},
            {"max_replicas": 0},
            {"cost_per_gpu_hour": 0.0},
            {"nodes": 0},
            {"gpus_per_replica": 4, "nodes": 3},
        ],
    )
    def test_invalid_fleets_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CandidateFleet("V100", **kwargs)


@pytest.fixture(scope="module")
def engine(registry, overhead_db):
    return SweepEngine(
        registries={"V100": registry},
        overhead_dbs={"individual": overhead_db},
    )


@pytest.fixture(scope="module")
def collective_model_for():
    return lambda n: CollectiveModel.calibrate(
        GroundTruthCollectives(NVLINK), n
    )


class TestCapacityPlanner:
    def test_relaxed_target_is_feasible_and_ranked(self, engine):
        planner = CapacityPlanner(
            engine, ServingTarget.from_ms(10_000, 50.0)
        )
        plans = planner.plan_dlrm(DLRM_DEFAULT, (32, 64, 128))
        assert plans
        assert plans[0].meets_slo
        assert plans[0].latency_us <= 50_000.0
        # Feasible block first, cost-sorted inside the block.
        feasible = [p for p in plans if p.meets_slo]
        assert plans[: len(feasible)] == feasible
        costs = [p.cost_per_hour for p in feasible]
        assert costs == sorted(costs)

    def test_prune_preserves_feasible_plans(self, engine, registry):
        """Branch-and-bound pruning only drops provably-over-SLO points."""
        from repro.baselines import predict_kernel_only_us
        from repro.models import MODE_INFERENCE
        from repro.models.dlrm import build_dlrm_graph

        batches = (32, 8192)
        big_bound = predict_kernel_only_us(
            build_dlrm_graph(DLRM_DEFAULT, 8192, mode=MODE_INFERENCE),
            registry,
        )
        target = ServingTarget(qps=10_000.0, latency_slo_us=big_bound * 0.5)
        planner = CapacityPlanner(engine, target)
        unpruned = planner.plan_dlrm(DLRM_DEFAULT, batches)
        assert planner.last_prune_stats == {
            "pruned": 0, "evaluated": len(batches),
        }
        pruned = planner.plan_dlrm(DLRM_DEFAULT, batches, prune=True)
        stats = planner.last_prune_stats
        assert stats["pruned"] > 0
        assert stats["pruned"] + stats["evaluated"] == len(batches)
        # Every SLO-meeting plan survives pruning, byte-identically.
        assert [p.to_dict() for p in pruned if p.meets_slo] == [
            p.to_dict() for p in unpruned if p.meets_slo
        ]

    def test_impossible_target_returns_best_effort(self, engine):
        planner = CapacityPlanner(
            engine,
            ServingTarget(qps=5_000_000.0, latency_slo_us=10.0),
        )
        plans = planner.plan_dlrm(
            DLRM_DEFAULT, (32,),
            fleets=[CandidateFleet("V100", max_replicas=4)],
        )
        assert plans
        assert not any(p.meets_slo for p in plans)

    def test_sharded_replicas_on_the_grid(
        self, engine, collective_model_for
    ):
        planner = CapacityPlanner(engine, ServingTarget.from_ms(5_000, 50.0))
        plans = planner.plan_dlrm(
            DLRM_DEFAULT, (64, 128),
            fleets=[
                CandidateFleet("V100", gpus_per_replica=1),
                CandidateFleet("V100", gpus_per_replica=2),
            ],
            collective_model_for=collective_model_for,
        )
        shapes = {p.fleet for p in plans}
        assert shapes == {"V100x1", "V100x2"}
        overlaps = {p.overlap for p in plans if p.fleet == "V100x2"}
        assert overlaps == {"none", "full"}

    def test_sharded_without_collective_model_rejected(self, engine):
        planner = CapacityPlanner(engine, ServingTarget.from_ms(1000, 50.0))
        with pytest.raises(ValueError, match="collective_model_for"):
            planner.plan_dlrm(
                DLRM_DEFAULT, (64,),
                fleets=[CandidateFleet("V100", gpus_per_replica=2)],
            )

    def test_unknown_registry_rejected(self, engine):
        planner = CapacityPlanner(engine, ServingTarget.from_ms(1000, 50.0))
        with pytest.raises(ValueError, match="unknown registry"):
            planner.plan_dlrm(
                DLRM_DEFAULT, (64,), fleets=[CandidateFleet("H100")]
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_sizes": ()},
            {"batch_sizes": (0,)},
            {"batch_sizes": (64,), "fleets": []},
            {"batch_sizes": (64,), "shardings": {}},
            {"batch_sizes": (64,), "overlap_policies": ()},
        ],
    )
    def test_empty_axes_rejected(self, engine, kwargs):
        planner = CapacityPlanner(engine, ServingTarget.from_ms(1000, 50.0))
        with pytest.raises(ValueError):
            planner.plan_dlrm(DLRM_DEFAULT, **kwargs)

    def test_plan_capacity_convenience(self, registry, overhead_db):
        plans = plan_capacity(
            ServingTarget.from_ms(10_000, 50.0),
            DLRM_DEFAULT,
            registries={"V100": registry},
            overheads={"individual": overhead_db},
            batch_sizes=(64, 128),
        )
        assert plans and plans[0].meets_slo

    def test_plans_serialize_to_json(self, engine):
        planner = CapacityPlanner(engine, ServingTarget.from_ms(10_000, 50.0))
        plans = planner.plan_dlrm(DLRM_DEFAULT, (64,))
        rows = json.loads(plans_to_json(plans))
        assert len(rows) == len(plans)
        assert rows[0]["fleet"] == "V100x1"
        assert isinstance(rows[0]["meets_slo"], bool)

    def test_rank_plans_keeps_every_plan(self, engine):
        planner = CapacityPlanner(engine, ServingTarget.from_ms(10_000, 50.0))
        plans = planner.plan_dlrm(DLRM_DEFAULT, (32, 64, 128))
        assert sorted(rank_plans(plans), key=id) == sorted(plans, key=id)


class TestSimulateValidation:
    def test_top_feasible_plans_get_measured_p99(self, engine):
        target = ServingTarget.from_ms(10_000, 50.0)
        planner = CapacityPlanner(engine, target)
        plans = planner.plan_dlrm(
            DLRM_DEFAULT, (32, 64, 128),
            validate=VALIDATE_SIMULATE, validate_top_k=2,
            validate_requests=1500,
        )
        validated = [p for p in plans if p.simulated_us is not None]
        assert len(validated) == 2
        for plan in validated:
            assert plan.simulated_us > 0.0
            # meets_slo can only be demoted by the simulator, never
            # promoted: every still-feasible validated plan measured
            # under the SLO.
            if plan.meets_slo:
                assert plan.simulated_us <= target.latency_slo_us
        # The re-ranked list still leads with the feasible block.
        feasible = [p for p in plans if p.meets_slo]
        assert plans[: len(feasible)] == feasible

    def test_validation_is_seeded(self, engine):
        planner = CapacityPlanner(engine, ServingTarget.from_ms(10_000, 50.0))
        kwargs = dict(
            validate=VALIDATE_SIMULATE, validate_top_k=1,
            validate_requests=1000, validate_seed=3,
        )
        first = planner.plan_dlrm(DLRM_DEFAULT, (64,), **kwargs)
        second = planner.plan_dlrm(DLRM_DEFAULT, (64,), **kwargs)
        assert [p.to_dict() for p in first] == [p.to_dict() for p in second]

    def test_unknown_validate_mode_rejected(self, engine):
        planner = CapacityPlanner(engine, ServingTarget.from_ms(10_000, 50.0))
        with pytest.raises(ValueError, match="unknown validate mode"):
            planner.plan_dlrm(DLRM_DEFAULT, (64,), validate="analytically")

    def test_validate_plans_rejects_bad_top_k(self, engine):
        planner = CapacityPlanner(engine, ServingTarget.from_ms(10_000, 50.0))
        with pytest.raises(ValueError, match="top_k"):
            planner.validate_plans(DLRM_DEFAULT, [], top_k=0)

    def test_simulated_us_roundtrips(self, engine):
        planner = CapacityPlanner(engine, ServingTarget.from_ms(10_000, 50.0))
        plans = planner.plan_dlrm(
            DLRM_DEFAULT, (64,),
            validate=VALIDATE_SIMULATE, validate_top_k=1,
            validate_requests=1000,
        )
        for plan in plans:
            row = json.loads(json.dumps(plan.to_dict()))
            assert CapacityPlan.from_dict(row) == plan


class TestMultiNodeCapacity:
    def test_multinode_without_topology_model_rejected(self, engine):
        planner = CapacityPlanner(engine, ServingTarget.from_ms(1000, 50.0))
        with pytest.raises(ValueError, match="topology_model_for"):
            planner.plan_dlrm(
                DLRM_DEFAULT, (64,),
                fleets=[
                    CandidateFleet("V100", gpus_per_replica=4, nodes=2)
                ],
            )

    def test_multinode_replicas_on_the_grid(self, engine):
        planner = CapacityPlanner(engine, ServingTarget.from_ms(5_000, 50.0))
        plans = planner.plan_dlrm(
            DLRM_DEFAULT, (64, 128),
            fleets=[
                CandidateFleet("V100", gpus_per_replica=2),
                CandidateFleet("V100", gpus_per_replica=4, nodes=2),
            ],
            collective_model_for=lambda n: CollectiveModel.calibrate(
                GroundTruthCollectives(NVLINK), n
            ),
            topology_model_for=lambda topo: (
                TopologyCollectiveModel.calibrate(
                    GroundTruthTopologyCollectives(topo)
                )
            ),
        )
        shapes = {p.fleet for p in plans}
        assert shapes == {"V100x2", "V100x4@2n"}
        multinode = [p for p in plans if p.nodes == 2]
        assert multinode
        assert all(p.gpus_per_replica == 4 for p in multinode)
        assert all(
            p.bottleneck in ("compute", "intra", "inter") for p in multinode
        )
        rows = json.loads(plans_to_json(plans))
        assert {"nodes", "bottleneck"} <= set(rows[0])
