"""Unit tests for overhead extraction, filtering and databases."""

import pytest

from repro.models import build_model
from repro.overheads import (
    OverheadDatabase,
    OverheadStats,
    extract_overhead_samples,
    merge_samples,
    remove_outliers,
)
from repro.simulator.host import T1, T2, T3, T4, T5


class TestOutlierRemoval:
    def test_keeps_clean_data(self):
        data = [1.0, 1.1, 0.9, 1.05, 0.95]
        assert sorted(remove_outliers(data)) == sorted(data)

    def test_drops_extreme(self):
        data = [1.0] * 20 + [50.0]
        kept = remove_outliers(data)
        assert 50.0 not in kept
        assert len(kept) == 20

    def test_small_samples_untouched(self):
        assert remove_outliers([1.0, 99.0]) == [1.0, 99.0]


class TestStats:
    def test_mean_std(self):
        st = OverheadStats.from_samples([2.0, 4.0], filter_outliers=False)
        assert st.mean == pytest.approx(3.0)
        assert st.count == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            OverheadStats.from_samples([])

    def test_dict_roundtrip(self):
        st = OverheadStats.from_samples([1.0, 2.0, 3.0])
        assert OverheadStats.from_dict(st.to_dict()) == st


class TestExtraction:
    def test_all_types_present(self, profiled_run):
        samples = extract_overhead_samples(profiled_run.trace)
        types = {t for per in samples.values() for t in per}
        assert {T1, T2, T3, T4} <= types

    def test_t5_for_multi_kernel_ops(self, profiled_run):
        samples = extract_overhead_samples(profiled_run.trace)
        # AddmmBackward0 launches two kernels -> has T5 gaps.
        assert samples["AddmmBackward0"][T5]

    def test_t5_for_cpu_only_ops(self, profiled_run):
        samples = extract_overhead_samples(profiled_run.trace)
        assert samples["aten::view"][T5]

    def test_extracted_t1_near_true_mean(self, device, profiled_run):
        """Extraction must recover the hidden T1 level (~8 µs)."""
        samples = extract_overhead_samples(profiled_run.trace)
        t1_all = [v for per in samples.values() for v in per.get(T1, [])]
        mean = sum(t1_all) / len(t1_all)
        true = device.host.mean_us("any", T1)
        assert mean == pytest.approx(true, rel=0.35)

    def test_extracted_t2_tracks_op_differences(self, device, profiled_run):
        samples = extract_overhead_samples(profiled_run.trace)
        heavy = samples["LookupFunction"][T2]
        light = samples["aten::relu"][T2]
        assert sum(heavy) / len(heavy) > sum(light) / len(light)

    def test_merge_pools_samples(self, profiled_run):
        a = extract_overhead_samples(profiled_run.trace)
        merged = merge_samples([a, a])
        assert len(merged["aten::linear"][T2]) == 2 * len(a["aten::linear"][T2])


class TestDatabase:
    def test_from_trace(self, overhead_db):
        assert overhead_db.mean_us("aten::linear", T2) > 0
        assert "aten::linear" in overhead_db.op_names

    def test_fallback_for_unknown_op(self, overhead_db):
        value = overhead_db.mean_us("aten::never_seen", T2)
        assert value > 0

    def test_unknown_type_rejected(self, overhead_db):
        with pytest.raises(KeyError):
            overhead_db.mean_us("aten::linear", "T7")

    def test_json_roundtrip(self, overhead_db):
        restored = OverheadDatabase.from_json(overhead_db.to_json())
        assert restored.mean_us("aten::linear", T2) == pytest.approx(
            overhead_db.mean_us("aten::linear", T2)
        )

    def test_shared_database(self, device):
        traces = []
        for name in ("DLRM_default", "DLRM_DDP"):
            g = build_model(name, 128)
            traces.append(
                device.run(g, iterations=4, with_profiler=True, warmup=1).trace
            )
        shared = OverheadDatabase.shared(traces)
        assert shared.mean_us("aten::linear", T2) > 0

    def test_shared_requires_traces(self):
        with pytest.raises(ValueError):
            OverheadDatabase.shared([])

    def test_dominating_ops_ranked(self, overhead_db):
        ranked = overhead_db.dominating_ops_by(T2, top_k=5)
        means = [st.mean for _, st in ranked]
        assert means == sorted(means, reverse=True)

    def test_stats_for_missing(self, overhead_db):
        assert overhead_db.stats_for("aten::never_seen", T2) is None

    def test_fallback_is_count_weighted_mean(self):
        """Regression: the running-sum fallback must equal the old
        materialize-[mean]*count computation (without its O(total
        samples) memory cost)."""
        stats = {
            "op_a": {T1: OverheadStats(mean=2.0, std=0.0, count=3)},
            "op_b": {T1: OverheadStats(mean=10.0, std=0.0, count=1)},
            "op_c": {T1: OverheadStats(mean=4.0, std=0.0, count=0)},
        }
        db = OverheadDatabase(stats)
        values = [2.0] * 3 + [10.0] * 1 + [4.0] * 1  # count clamped to >= 1
        assert db.mean_us("unknown_op", T1) == pytest.approx(
            sum(values) / len(values), rel=1e-12
        )

    def test_fallback_unchanged_on_real_trace(self, profiled_run):
        """Fallbacks from a real trace match the naive weighted mean."""
        samples = extract_overhead_samples(profiled_run.trace)
        db = OverheadDatabase.from_samples(samples)
        for otype in (T1, T2, T4):
            pooled = []
            for op_name in db.op_names:
                st = db.stats_for(op_name, otype)
                if st is not None:
                    pooled.extend([st.mean] * max(st.count, 1))
            assert db.mean_us("aten::never_seen", otype) == pytest.approx(
                sum(pooled) / len(pooled), rel=1e-12
            )

    def test_fallback_default_when_type_unobserved(self):
        db = OverheadDatabase({"op": {T1: OverheadStats(1.0, 0.0, 5)}})
        assert db.mean_us("op", T2) == 5.0


class TestModelSizeIndependence:
    """The paper's two working assumptions (Section III-C)."""

    def test_t1_stable_across_batch_sizes(self, device):
        means = []
        for batch in (128, 512):
            g = build_model("DLRM_default", batch)
            trace = device.run(
                g, iterations=5, with_profiler=True, warmup=1
            ).trace
            db = OverheadDatabase.from_trace(trace)
            means.append(db.mean_us("aten::linear", T1))
        assert means[0] == pytest.approx(means[1], rel=0.25)

    def test_t2_stable_across_models(self, device):
        means = []
        for name in ("DLRM_default", "DLRM_DDP"):
            g = build_model(name, 256)
            trace = device.run(
                g, iterations=5, with_profiler=True, warmup=1
            ).trace
            db = OverheadDatabase.from_trace(trace)
            means.append(db.mean_us("aten::linear", T2))
        assert means[0] == pytest.approx(means[1], rel=0.25)
