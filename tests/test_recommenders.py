"""Unit + integration tests for the extra RM workloads."""

import pytest

from repro.e2e import predict_e2e
from repro.models import build_model
from repro.models.recommenders import (
    DCN_CONFIG,
    DEEPFM_CONFIG,
    WIDE_AND_DEEP_CONFIG,
    RecommenderConfig,
    build_dcn_graph,
    build_deepfm_graph,
    build_wide_and_deep_graph,
)
from repro.overheads import OverheadDatabase

_BUILDERS = {
    "DeepFM": build_deepfm_graph,
    "DCN": build_dcn_graph,
    "WideAndDeep": build_wide_and_deep_graph,
}


class TestGraphs:
    @pytest.mark.parametrize("name", sorted(_BUILDERS))
    def test_builds_and_validates(self, name):
        graph = _BUILDERS[name](256)
        graph.validate()
        assert len(graph) > 20

    @pytest.mark.parametrize("name", sorted(_BUILDERS))
    def test_has_embedding_and_backward(self, name):
        names = {n.op_name for n in _BUILDERS[name](64)}
        assert "LookupFunction" in names
        assert "LookupFunctionBackward" in names
        assert "Optimizer.step" in names

    @pytest.mark.parametrize("name", sorted(_BUILDERS))
    def test_bce_head(self, name):
        names = {n.op_name for n in _BUILDERS[name](64)}
        assert "aten::binary_cross_entropy" in names
        assert "BinaryCrossEntropyBackward0" in names

    def test_dcn_has_cross_layers(self):
        graph = build_dcn_graph(64)
        muls = [n for n in graph if n.op_name == "aten::mul"]
        assert len(muls) == DCN_CONFIG.cross_layers

    def test_deepfm_has_fm_interaction(self):
        names = {n.op_name for n in build_deepfm_graph(64)}
        assert "aten::bmm" in names
        assert "aten::index" in names

    def test_builders_reachable_from_zoo(self):
        for name in _BUILDERS:
            assert len(build_model(name, 64)) > 0

    @pytest.mark.parametrize("name", sorted(_BUILDERS))
    def test_nonpositive_batch_rejected(self, name):
        with pytest.raises(ValueError):
            _BUILDERS[name](0)

    def test_serialization_roundtrip(self):
        from repro.graph import graph_from_dict, graph_to_dict

        for fn in _BUILDERS.values():
            graph = fn(64)
            restored = graph_from_dict(graph_to_dict(graph))
            assert restored.num_kernels() == graph.num_kernels()


class TestPredictionWithDlrmAssets:
    """The extendibility claim: DLRM-trained assets cover new RMs."""

    @pytest.mark.parametrize("name", sorted(_BUILDERS))
    def test_all_kernels_covered_by_registry(self, name, registry):
        graph = _BUILDERS[name](128)
        for node in graph.nodes:
            for kernel in node.op.kernel_calls():
                assert registry.predict_us(kernel) > 0

    @pytest.mark.parametrize("name", sorted(_BUILDERS))
    def test_e2e_error_within_band(self, name, device, registry):
        graph = _BUILDERS[name](512)
        profiled = device.run(graph, iterations=6, with_profiler=True, warmup=1)
        truth = device.run(graph, iterations=6, warmup=1)
        db = OverheadDatabase.from_trace(profiled.trace)
        pred = predict_e2e(graph, registry, db)
        err = abs(pred.total_us - truth.mean_e2e_us) / truth.mean_e2e_us
        assert err < 0.20, f"{name}: {err:.1%}"


class TestConfig:
    def test_custom_config(self):
        config = RecommenderConfig(name="tiny", num_tables=4,
                                   rows_per_table=1000, embedding_dim=8,
                                   mlp=(32,))
        graph = build_deepfm_graph(32, config)
        graph.validate()

    def test_default_names(self):
        assert DEEPFM_CONFIG.name == "DeepFM"
        assert DCN_CONFIG.name == "DCN"
        assert WIDE_AND_DEEP_CONFIG.name == "WideAndDeep"
