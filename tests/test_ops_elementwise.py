"""Unit tests for element-wise / reduction / loss operators."""

import pytest

from repro.ops import (
    AccumulateGrad,
    Add,
    AddBackward,
    AddInplace,
    BinaryCrossEntropy,
    BinaryCrossEntropyBackward,
    KernelType,
    MseLoss,
    MseLossBackward,
    Relu,
    ReluBackward,
    Sigmoid,
    Softmax,
    Sum,
    TBackward,
    View,
    ZeroInplace,
    Zeros,
)


def kernel_of(op):
    calls = op.kernel_calls()
    assert len(calls) == 1
    return calls[0]


class TestRelu:
    def test_traffic(self):
        k = kernel_of(Relu((128, 64)))
        n = 128 * 64
        assert k.params["flop"] == n
        assert k.params["bytes_read"] == 4 * n
        assert k.params["bytes_write"] == 4 * n

    def test_backward_reads_two_tensors(self):
        k = kernel_of(ReluBackward((128, 64)))
        assert k.params["bytes_read"] == 2 * 4 * 128 * 64


class TestLosses:
    def test_mse_scalar_output(self):
        op = MseLoss((32, 1))
        assert op.outputs[0].shape == ()
        assert kernel_of(op).params["bytes_write"] == pytest.approx(4.0)

    def test_mse_backward_full_gradient(self):
        k = kernel_of(MseLossBackward((32, 1)))
        assert k.params["bytes_write"] == 4 * 32

    def test_bce_pair(self):
        fwd = kernel_of(BinaryCrossEntropy((64, 1)))
        bwd = kernel_of(BinaryCrossEntropyBackward((64, 1)))
        assert fwd.params["flop"] > 0
        assert bwd.params["bytes_write"] == 4 * 64


class TestFillOps:
    def test_zero_inplace_write_only(self):
        k = kernel_of(ZeroInplace((100,)))
        assert k.params["bytes_read"] == 0
        assert k.params["bytes_write"] == 400

    def test_zeros_allocates(self):
        op = Zeros((10, 10))
        assert op.inputs == ()
        assert kernel_of(op).params["bytes_write"] == 400

    def test_sum_reduces_to_scalar(self):
        op = Sum((50, 2))
        assert op.outputs[0].shape == ()
        assert kernel_of(op).params["bytes_read"] == 400


class TestCpuOnlyOps:
    def test_view_no_kernels(self):
        assert View((4, 4), (16,)).kernel_calls() == ()

    def test_view_rejects_numel_change(self):
        with pytest.raises(ValueError):
            View((4, 4), (15,))

    def test_tbackward_no_kernels(self):
        assert TBackward((3, 5)).kernel_calls() == ()
        assert TBackward((3, 5)).outputs[0].shape == (5, 3)

    def test_add_backward_passthrough(self):
        op = AddBackward((8, 8))
        assert op.kernel_calls() == ()
        assert len(op.outputs) == 2


class TestBinaryOps:
    def test_add_reads_both(self):
        k = kernel_of(Add((10,)))
        assert k.params["bytes_read"] == 80

    def test_add_inplace_same(self):
        k = kernel_of(AddInplace((10,)))
        assert k.params["bytes_write"] == 40

    def test_accumulate_grad(self):
        k = kernel_of(AccumulateGrad((10,)))
        assert k.params["flop"] == 10


class TestActivations:
    def test_sigmoid_flops(self):
        assert kernel_of(Sigmoid((10,))).params["flop"] == 40

    def test_softmax_multi_pass_reads(self):
        k = kernel_of(Softmax((4, 16)))
        assert k.params["bytes_read"] == 2 * 4 * 64

    def test_all_elementwise_type(self):
        for op in (Relu((4,)), Add((4,)), Sum((4,)), Sigmoid((4,))):
            assert kernel_of(op).kernel_type == KernelType.ELEMENTWISE
