"""Unit tests for embedding-lookup operators."""

import pytest

from repro.ops import (
    EmbeddingBag,
    EmbeddingBagBackward,
    KernelType,
    LookupFunction,
    LookupFunctionBackward,
    embedding_kernel,
)


class TestEmbeddingKernel:
    def test_fwd_type(self):
        k = embedding_kernel("fwd", 512, 1000, 8, 10, 64)
        assert k.kernel_type == KernelType.EMBEDDING_FWD
        assert k.params["B"] == 512
        assert k.params["rows_per_block"] == 32

    def test_bwd_type(self):
        k = embedding_kernel("bwd", 512, 1000, 8, 10, 64)
        assert k.kernel_type == KernelType.EMBEDDING_BWD

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            embedding_kernel("sideways", 1, 1, 1, 1, 1)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            embedding_kernel("fwd", 0, 1, 1, 1, 1)


class TestLookupFunction:
    def test_tensor_signature(self):
        op = LookupFunction(B=512, E=1000, T=8, L=10, D=64)
        weights, indices, offsets = op.inputs
        assert weights.shape == (8 * 1000, 64)
        assert indices.shape == (512 * 8 * 10,)
        assert indices.dtype == "int64"
        assert offsets.shape == (512 * 8 + 1,)
        assert op.outputs[0].shape == (512, 8, 64)

    def test_single_batched_kernel(self):
        op = LookupFunction(B=512, E=1000, T=8, L=10, D=64)
        (k,) = op.kernel_calls()
        assert k.params["T"] == 8

    def test_rescale_batch(self):
        op = LookupFunction(512, 1000, 8, 10, 64).rescale_batch(512, 1024)
        assert op.B == 1024
        assert op.inputs[1].shape == (1024 * 8 * 10,)


class TestLookupFunctionBackward:
    def test_updates_weights_inplace_signature(self):
        op = LookupFunctionBackward(B=256, E=500, T=4, L=2, D=32)
        grad, weights, indices = op.inputs
        assert grad.shape == (256, 4, 32)
        assert op.outputs[0].shape == weights.shape

    def test_kernel_is_backward(self):
        (k,) = LookupFunctionBackward(256, 500, 4, 2, 32).kernel_calls()
        assert k.kernel_type == KernelType.EMBEDDING_BWD


class TestEmbeddingBag:
    def test_single_table(self):
        op = EmbeddingBag(B=128, E=1000, L=5, D=16)
        (k,) = op.kernel_calls()
        assert k.params["T"] == 1
        assert op.outputs[0].shape == (128, 16)

    def test_backward_counterpart(self):
        op = EmbeddingBagBackward(B=128, E=1000, L=5, D=16)
        (k,) = op.kernel_calls()
        assert k.kernel_type == KernelType.EMBEDDING_BWD
        assert k.params["T"] == 1

    def test_rescale(self):
        assert EmbeddingBag(128, 1000, 5, 16).rescale_batch(128, 64).B == 64
