"""The prediction service: canonical keys, memo tier, byte-identity.

Four contracts of :mod:`repro.service` are pinned here:

* the canonicalizer — structurally equal requests hash equal, any
  answer-changing perturbation hashes different, and keys are stable
  across ``PYTHONHASHSEED`` values (fresh-interpreter probes);
* the kernel-level cache under concurrency — the satellite bugfix:
  8 threads hammering one shared :class:`PerfModelRegistry` lose no
  counter updates, corrupt no values, and a mid-flight ``register``
  cannot resurrect stale cache entries;
* the graph-level memo tier — LRU bounds, tagged invalidation,
  epoch-guarded inserts;
* byte-identity — server responses on every path (cold, memo-hit,
  batched-concurrent) equal the direct library calls bit for bit, for
  DLRM / ResNet / Transformer in both modes.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import predict_kernel_only_us
from repro.e2e import predict_e2e, predict_memory
from repro.models import MODE_INFERENCE, MODE_TRAIN, build_model
from repro.models.dlrm import DlrmConfig, build_dlrm_graph
from repro.ops import KernelCall, KernelType
from repro.ops.dense import gemm_kernel
from repro.perfmodels import CacheInfo, KernelPerfModel, PerfModelRegistry
from repro.service import (
    GraphMemoCache,
    MemoInfo,
    PredictionService,
    REQUEST_KERNEL_ONLY,
    REQUEST_KINDS,
    REQUEST_MEMORY,
    REQUEST_PREDICT,
    ServiceStats,
    WhatIfRequest,
    WhatIfResponse,
    graph_key,
    render_stats,
    request_key,
)
from repro.serving import BatchingPolicy
from repro.sweep import kernel_digest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: A batched policy wide/slow enough that a burst submitted together
#: coalesces, yet narrow enough to exercise span slicing.
COALESCE = BatchingPolicy(max_batch=8, timeout_us=50_000.0)


def _response_bytes(response: WhatIfResponse) -> str:
    """Canonical JSON bytes of a response (the byte-identity witness)."""
    return json.dumps(response.to_dict(), sort_keys=True)


# ---------------------------------------------------------------------------
# Canonicalizer


small_dlrm_configs = st.builds(
    DlrmConfig,
    name=st.just("svc-prop"),
    bot_mlp=st.sampled_from([(13, 64, 64), (13, 128, 64)]),
    num_tables=st.integers(min_value=1, max_value=6),
    rows_per_table=st.sampled_from([1000, 100_000]),
    embedding_dim=st.just(64),
    top_mlp=st.sampled_from([(64, 1), (256, 64, 1)]),
    lookups_per_table=st.integers(min_value=1, max_value=16),
    loss=st.sampled_from(["mse", "bce"]),
)


class TestCanonicalKeys:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(config=small_dlrm_configs, batch=st.sampled_from([64, 256]))
    def test_rebuilt_graph_hashes_equal(self, config, batch):
        """Two independent builds of the same spec share every key."""
        a = build_dlrm_graph(config, batch)
        b = build_dlrm_graph(config, batch)
        for kind in REQUEST_KINDS:
            key_a = request_key(
                WhatIfRequest(graph=a, kind=kind), registry_fp="R", db_fp="D"
            )
            key_b = request_key(
                WhatIfRequest(graph=b, kind=kind), registry_fp="R", db_fp="D"
            )
            assert key_a == key_b, kind
        assert graph_key(a) == graph_key(b)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(config=small_dlrm_configs)
    def test_batch_perturbation_changes_every_key(self, config):
        a = build_dlrm_graph(config, 64)
        b = build_dlrm_graph(config, 128)
        for kind in REQUEST_KINDS:
            assert request_key(
                WhatIfRequest(graph=a, kind=kind), registry_fp="R", db_fp="D"
            ) != request_key(
                WhatIfRequest(graph=b, kind=kind), registry_fp="R", db_fp="D"
            ), kind

    def test_kinds_never_collide(self, dlrm_graph):
        keys = {
            request_key(
                WhatIfRequest(graph=dlrm_graph, kind=kind),
                registry_fp="R", db_fp="D",
            )
            for kind in REQUEST_KINDS
        }
        assert len(keys) == len(REQUEST_KINDS)

    def test_mode_perturbation_changes_key(self):
        train = build_model("DLRM_default", 256, mode=MODE_TRAIN)
        inference = build_model("DLRM_default", 256, mode=MODE_INFERENCE)
        assert request_key(
            WhatIfRequest(graph=train), registry_fp="R", db_fp="D"
        ) != request_key(
            WhatIfRequest(graph=inference), registry_fp="R", db_fp="D"
        )

    def test_each_kind_depends_on_exactly_its_inputs(self, dlrm_graph):
        def key(kind, **kwargs):
            return request_key(WhatIfRequest(graph=dlrm_graph, kind=kind),
                               **kwargs)

        base = dict(registry_fp="R", db_fp="D")
        # Registry fingerprint feeds predict and kernel_only.
        assert key(REQUEST_PREDICT, **base) != key(
            REQUEST_PREDICT, registry_fp="R2", db_fp="D"
        )
        assert key(REQUEST_KERNEL_ONLY, **base) != key(
            REQUEST_KERNEL_ONLY, registry_fp="R2", db_fp="D"
        )
        # Overhead DB and traversal knobs feed predict only.
        assert key(REQUEST_PREDICT, **base) != key(
            REQUEST_PREDICT, registry_fp="R", db_fp="D2"
        )
        assert key(REQUEST_KERNEL_ONLY, **base) == key(
            REQUEST_KERNEL_ONLY, registry_fp="R", db_fp="D2"
        )
        assert key(REQUEST_PREDICT, **base) != key(
            REQUEST_PREDICT, registry_fp="R", db_fp="D", kernel_gap_us=9.9
        )
        assert key(REQUEST_KERNEL_ONLY, **base) == key(
            REQUEST_KERNEL_ONLY, registry_fp="R", db_fp="D", kernel_gap_us=9.9
        )
        assert key(REQUEST_PREDICT, **base) != key(
            REQUEST_PREDICT, registry_fp="R", db_fp="D", sync_h2d=True
        )
        assert key(REQUEST_PREDICT, **base) != key(
            REQUEST_PREDICT, registry_fp="R", db_fp="D", t4_us=None
        )

    def test_memory_key_covers_optimizer_and_nothing_else(self, dlrm_graph):
        sgd = request_key(
            WhatIfRequest(graph=dlrm_graph, kind=REQUEST_MEMORY),
            registry_fp="R", db_fp="D",
        )
        adam = request_key(
            WhatIfRequest(graph=dlrm_graph, kind=REQUEST_MEMORY,
                          optimizer="adam"),
            registry_fp="R", db_fp="D",
        )
        assert sgd != adam
        # Asset fingerprints and knobs are not memory inputs.
        assert sgd == request_key(
            WhatIfRequest(graph=dlrm_graph, kind=REQUEST_MEMORY),
            registry_fp="OTHER", db_fp="OTHER", kernel_gap_us=123.0,
        )

    def test_kernel_digest_ignores_param_insertion_order(self):
        forward = KernelCall(
            KernelType.GEMM, {"m": 8, "n": 16, "k": 32, "batch": 1}
        )
        reversed_params = KernelCall(
            KernelType.GEMM, {"batch": 1, "k": 32, "n": 16, "m": 8}
        )
        assert kernel_digest(forward, {}) == kernel_digest(reversed_params, {})

    def test_unknown_kind_and_optimizer_rejected(self, dlrm_graph):
        with pytest.raises(ValueError, match="unknown request kind"):
            WhatIfRequest(graph=dlrm_graph, kind="explain")
        with pytest.raises(ValueError, match="unknown optimizer"):
            WhatIfRequest(graph=dlrm_graph, optimizer="lion")


#: Fresh-interpreter probe: every canonical key for a small DLRM graph,
#: with the asset fingerprints held fixed (they are hashlib-based and
#: covered by their own determinism tests).
KEY_PROBE = """
import json
import sys

from repro.models import build_model
from repro.service import (
    REQUEST_KINDS, WhatIfRequest, graph_key, request_key,
)

graph = build_model("DLRM_default", 64)
keys = {"graph": graph_key(graph)}
for kind in REQUEST_KINDS:
    keys[kind] = request_key(
        WhatIfRequest(graph=graph, kind=kind), registry_fp="R", db_fp="D"
    )
sys.stdout.write(json.dumps(keys, sort_keys=True))
"""


def _probe_keys(hash_seed: str) -> dict:
    env = {
        "PYTHONPATH": f"{REPO_ROOT / 'src'}:{REPO_ROOT}",
        "PYTHONHASHSEED": hash_seed,
        "PATH": "/usr/bin:/bin",
    }
    proc = subprocess.run(
        [sys.executable, "-c", KEY_PROBE],
        capture_output=True, text=True, env=env, check=True, cwd=REPO_ROOT,
    )
    return json.loads(proc.stdout)


class TestKeysAreHashSeedIndependent:
    def test_keys_match_across_interpreters(self):
        keys_a = _probe_keys("0")
        keys_b = _probe_keys("424242")
        assert keys_a == keys_b
        assert set(keys_a) == {"graph", *REQUEST_KINDS}


# ---------------------------------------------------------------------------
# Thread-safe kernel cache (the satellite bugfix)


class _AffineGemm(KernelPerfModel):
    """Deterministic toy model: time = base + slope * m."""

    kernel_type = KernelType.GEMM

    def __init__(self, base: float, slope: float = 0.25,
                 gate: threading.Event | None = None) -> None:
        self.base = base
        self.slope = slope
        self._gate = gate

    def predict_us(self, params):
        if self._gate is not None:
            self._gate.wait()
        return self.base + self.slope * params["m"]


class TestRegistryThreadSafety:
    def test_eight_thread_hammer_loses_no_updates(self):
        model = _AffineGemm(base=1.0)
        registry = PerfModelRegistry(cache_size=4096)
        registry.register(model)
        kernels = [gemm_kernel(m, 64, 64, 8) for m in range(1, 257)]
        expected = np.array([model.predict_us(k.params) for k in kernels])

        num_threads, rounds = 8, 20
        barrier = threading.Barrier(num_threads)
        errors: list[str] = []

        def hammer(thread_index: int) -> None:
            # Distinct per-thread rotations so lookups interleave on
            # different kernels, not in lockstep.
            order = kernels[thread_index:] + kernels[:thread_index]
            want = np.array([model.predict_us(k.params) for k in order])
            barrier.wait()
            for _ in range(rounds):
                got = registry.predict_many(order)
                if not np.array_equal(got, want):
                    errors.append(f"thread {thread_index}: wrong values")
                    return

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(num_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

        info = registry.cache_info()
        lookups = num_threads * rounds * len(kernels)
        # Exact counter conservation is the no-lost-updates witness: a
        # single dropped increment breaks the sum.
        assert info.hits + info.misses == lookups
        assert info.size == len(kernels)
        assert len(kernels) <= info.misses < lookups
        # Values in cache are correct after the stampede.
        assert np.array_equal(registry.predict_many(kernels), expected)

    def test_register_during_flight_keeps_stale_values_out(self):
        gate = threading.Event()
        old = _AffineGemm(base=1.0, gate=gate)
        new = _AffineGemm(base=1000.0)
        registry = PerfModelRegistry()
        registry.register(old)
        kernel = gemm_kernel(32, 32, 32)

        results: list[float] = []
        in_flight = threading.Thread(
            target=lambda: results.append(registry.predict_us(kernel))
        )
        in_flight.start()
        # The flight is blocked inside the old model's predict, outside
        # the registry lock; swap the model underneath it.
        registry.register(new)
        gate.set()
        in_flight.join()

        # The in-flight caller got the model it started with...
        assert results == [old.base + old.slope * 32]
        # ...but its value must not have been cached over the new
        # model's: the next lookup recomputes via the new model.
        assert registry.predict_us(kernel) == new.base + new.slope * 32

    def test_concurrent_cache_info_snapshots_are_consistent(self):
        registry = PerfModelRegistry()
        registry.register(_AffineGemm(base=2.0))
        kernels = [gemm_kernel(m, 8, 8) for m in range(1, 65)]
        stop = threading.Event()
        snapshots: list[CacheInfo] = []

        def reader() -> None:
            while not stop.is_set() and len(snapshots) < 10_000:
                snapshots.append(registry.cache_info())

        t = threading.Thread(target=reader)
        t.start()
        for _ in range(50):
            registry.predict_many(kernels)
        stop.set()
        t.join()
        final = registry.cache_info()
        assert final.hits + final.misses == 50 * len(kernels)
        for snap in snapshots:
            assert 0 <= snap.hits + snap.misses <= 50 * len(kernels)
            assert snap.size <= snap.max_size


# ---------------------------------------------------------------------------
# Graph-level memo tier


class TestGraphMemoCache:
    def test_lru_bound_and_eviction_order(self):
        memo = GraphMemoCache(max_entries=2)
        memo.put("a", 1)
        memo.put("b", 2)
        assert memo.get("a") == 1  # refresh a; b is now the LRU victim
        memo.put("c", 3)
        assert len(memo) == 2
        assert memo.get("b") is None
        assert memo.get("a") == 1 and memo.get("c") == 3
        info = memo.info()
        assert info.evictions == 1
        assert info.size == 2 and info.max_size == 2

    def test_invalidate_drops_exactly_the_tagged_entries(self):
        memo = GraphMemoCache()
        memo.put("p", "pred", tags=("gpu:V100", "db:raw"))
        memo.put("k", "kern", tags=("gpu:V100",))
        memo.put("m", "mem", tags=())
        assert memo.invalidate("db:raw") == 1
        assert memo.get("p") is None
        assert memo.get("k") == "kern" and memo.get("m") == "mem"
        assert memo.invalidate("gpu:V100") == 1
        assert memo.get("k") is None and memo.get("m") == "mem"
        assert memo.invalidate("gpu:V100") == 0  # nothing left to drop
        assert memo.info().invalidations == 2

    def test_epoch_guard_discards_stale_inserts(self):
        memo = GraphMemoCache()
        tags = ("gpu:V100",)
        epochs = memo.epochs(tags)
        memo.invalidate("gpu:V100")  # races the in-flight computation
        assert memo.put("key", "stale", tags=tags, epochs=epochs) is False
        assert memo.get("key") is None
        fresh = memo.epochs(tags)
        assert memo.put("key", "fresh", tags=tags, epochs=fresh) is True
        assert memo.get("key") == "fresh"

    def test_zero_capacity_never_caches(self):
        memo = GraphMemoCache(max_entries=0)
        assert memo.put("a", 1) is False
        assert memo.get("a") is None
        assert len(memo) == 0

    def test_clear_resets_counters_but_not_epochs(self):
        memo = GraphMemoCache()
        memo.put("a", 1, tags=("gpu:V100",))
        epochs = memo.epochs(("gpu:V100",))
        memo.invalidate("gpu:V100")
        memo.clear()
        assert memo.info() == MemoInfo(
            hits=0, misses=0, size=0, max_size=memo.info().max_size,
            evictions=0, invalidations=0,
        )
        # The pre-invalidation snapshot is still stale after clear().
        assert memo.put("a", 1, tags=("gpu:V100",), epochs=epochs) is False


# ---------------------------------------------------------------------------
# Byte-identity: server vs direct library calls


@pytest.fixture(scope="module")
def workloads():
    """(label, graph) pairs: three architectures in both modes."""
    specs = [
        ("DLRM_default", 512),
        ("resnet50", 16),
        ("Transformer", 8),
    ]
    return [
        (f"{name}@{batch}:{mode}", build_model(name, batch, mode=mode))
        for name, batch in specs
        for mode in (MODE_TRAIN, MODE_INFERENCE)
    ]


class TestByteIdentity:
    def test_cold_memo_and_batched_paths_match_direct(
        self, registry, overhead_db, workloads
    ):
        direct = {
            label: _response_bytes(
                WhatIfResponse(
                    kind=REQUEST_PREDICT, key="", cached=False,
                    prediction=predict_e2e(graph, registry, overhead_db),
                )
            )
            for label, graph in workloads
        }

        with PredictionService(
            registries={"V100": registry},
            overhead_dbs={"individual": overhead_db},
            batching=COALESCE,
        ) as service:
            # Batched-concurrent: the whole mix submitted at once, two
            # copies each, so micro-batches mix architectures and the
            # duplicate arrives both as in-batch twin and memo hit.
            requests = [
                WhatIfRequest(graph=graph)
                for _, graph in workloads for _ in range(2)
            ]
            responses = service.predict_all(requests)
            labels = [label for label, _ in workloads for _ in range(2)]
            for label, response in zip(labels, responses):
                got = WhatIfResponse(
                    kind=response.kind, key="", cached=False,
                    prediction=response.prediction,
                )
                assert _response_bytes(got) == direct[label], label

            # Memo-hit path: a repeat ask is served from the tier and
            # still byte-identical.
            for label, graph in workloads:
                repeat = service.predict(WhatIfRequest(graph=graph))
                assert repeat.cached is True
                got = WhatIfResponse(
                    kind=repeat.kind, key="", cached=False,
                    prediction=repeat.prediction,
                )
                assert _response_bytes(got) == direct[label], label
            assert service.stats().peak_batch > 1

        # Cold path: a fresh, unbatched server (memo disabled) computes
        # every answer from scratch.
        with PredictionService(
            registries={"V100": registry},
            overhead_dbs={"individual": overhead_db},
            batching=BatchingPolicy(max_batch=1, timeout_us=0.0),
            memo_entries=0,
        ) as service:
            for label, graph in workloads:
                cold = service.predict(WhatIfRequest(graph=graph))
                assert cold.cached is False
                got = WhatIfResponse(
                    kind=cold.kind, key="", cached=False,
                    prediction=cold.prediction,
                )
                assert _response_bytes(got) == direct[label], label

    def test_kernel_only_and_memory_kinds_match_direct(
        self, registry, overhead_db, dlrm_graph
    ):
        with PredictionService(
            registries={"V100": registry},
            overhead_dbs={"individual": overhead_db},
        ) as service:
            kernel_only = service.predict(
                WhatIfRequest(graph=dlrm_graph, kind=REQUEST_KERNEL_ONLY)
            )
            assert kernel_only.kernel_only_us == predict_kernel_only_us(
                dlrm_graph, registry
            )
            memory = service.predict(
                WhatIfRequest(graph=dlrm_graph, kind=REQUEST_MEMORY,
                              optimizer="adam")
            )
            assert memory.memory == predict_memory(
                dlrm_graph, optimizer="adam"
            )


# ---------------------------------------------------------------------------
# Service behavior: invalidation, errors, lifecycle


class TestServiceInvalidation:
    def test_reregistering_overheads_drops_only_predict_entries(
        self, registry, overhead_db, dlrm_graph, device
    ):
        from repro.overheads import OverheadDatabase

        with PredictionService(
            registries={"V100": registry},
            overhead_dbs={"individual": overhead_db},
        ) as service:
            first = service.predict(WhatIfRequest(graph=dlrm_graph))
            baseline = service.predict(
                WhatIfRequest(graph=dlrm_graph, kind=REQUEST_KERNEL_ONLY)
            )
            profiled = device.run(
                dlrm_graph, iterations=4, batch_size=512,
                with_profiler=True, warmup=1,
            )
            replacement = OverheadDatabase.from_trace(profiled.trace)
            assert service.register_overheads("individual", replacement) == 1

            # predict recomputes under a new key (db fingerprint moved);
            # kernel_only is untouched by overheads and stays memoized.
            second = service.predict(WhatIfRequest(graph=dlrm_graph))
            assert second.cached is False
            assert second.key != first.key
            repeat = service.predict(
                WhatIfRequest(graph=dlrm_graph, kind=REQUEST_KERNEL_ONLY)
            )
            assert repeat.cached is True
            assert repeat.key == baseline.key

    def test_reregistering_registry_drops_predict_and_kernel_only(
        self, registry, overhead_db, dlrm_graph
    ):
        with PredictionService(
            registries={"V100": registry},
            overhead_dbs={"individual": overhead_db},
        ) as service:
            service.predict(WhatIfRequest(graph=dlrm_graph))
            service.predict(
                WhatIfRequest(graph=dlrm_graph, kind=REQUEST_KERNEL_ONLY)
            )
            memory = service.predict(
                WhatIfRequest(graph=dlrm_graph, kind=REQUEST_MEMORY)
            )
            # Same registry object re-registered: same content, so the
            # keys do not move — but the entries are still dropped and
            # recomputed (explicit invalidation, never staleness).
            assert service.register_registry("V100", registry) == 2
            recomputed = service.predict(WhatIfRequest(graph=dlrm_graph))
            assert recomputed.cached is False
            # memory answers carry no asset tags and survive.
            still_cached = service.predict(
                WhatIfRequest(graph=dlrm_graph, kind=REQUEST_MEMORY)
            )
            assert still_cached.cached is True
            assert still_cached.key == memory.key

    def test_unknown_labels_fail_the_future_with_known_labels_listed(
        self, registry, overhead_db, dlrm_graph
    ):
        with PredictionService(
            registries={"V100": registry},
            overhead_dbs={"individual": overhead_db},
        ) as service:
            with pytest.raises(KeyError, match="no resident registry"):
                service.predict(
                    WhatIfRequest(graph=dlrm_graph, gpu="H100")
                )
            with pytest.raises(KeyError, match="no resident overhead DB"):
                service.predict(
                    WhatIfRequest(graph=dlrm_graph, overheads="shared")
                )

    def test_close_drains_then_rejects(
        self, registry, overhead_db, dlrm_graph
    ):
        service = PredictionService(
            registries={"V100": registry},
            overhead_dbs={"individual": overhead_db},
        )
        futures = [
            service.submit(WhatIfRequest(graph=dlrm_graph)) for _ in range(5)
        ]
        service.close()
        for future in futures:
            assert future.result().kind == REQUEST_PREDICT
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(WhatIfRequest(graph=dlrm_graph))
        service.close()  # idempotent

    def test_validation_of_constructor_arguments(self, registry, overhead_db):
        with pytest.raises(ValueError, match="at least one registry"):
            PredictionService({}, {"db": overhead_db})
        with pytest.raises(ValueError, match="overhead database"):
            PredictionService({"V100": registry}, {})
        with pytest.raises(KeyError, match="unknown default registry"):
            PredictionService(
                {"V100": registry}, {"db": overhead_db}, default_gpu="A100"
            )
        with pytest.raises(ValueError, match="workers"):
            PredictionService(
                {"V100": registry}, {"db": overhead_db}, workers=0
            )


# ---------------------------------------------------------------------------
# Serialization round-trips + stats + golden snapshot


class TestRoundTrips:
    def test_request_roundtrip(self, dlrm_graph):
        request = WhatIfRequest(
            graph=dlrm_graph, kind=REQUEST_MEMORY, gpu="V100",
            overheads="individual", optimizer="adam",
        )
        restored = WhatIfRequest.from_dict(request.to_dict())
        assert restored.kind == request.kind
        assert restored.gpu == request.gpu
        assert restored.overheads == request.overheads
        assert restored.optimizer == request.optimizer
        assert graph_key(restored.graph) == graph_key(request.graph)

    def test_response_roundtrip(self, registry, overhead_db, dlrm_graph):
        prediction = predict_e2e(dlrm_graph, registry, overhead_db)
        response = WhatIfResponse(
            kind=REQUEST_PREDICT, key="abc123", cached=True,
            prediction=prediction,
        )
        restored = WhatIfResponse.from_dict(response.to_dict())
        assert _response_bytes(restored) == _response_bytes(response)
        bare = WhatIfResponse(
            kind=REQUEST_KERNEL_ONLY, key="k", cached=False,
            kernel_only_us=123.5,
        )
        assert WhatIfResponse.from_dict(bare.to_dict()) == bare

    def test_memory_response_roundtrip(self, dlrm_graph):
        response = WhatIfResponse(
            kind=REQUEST_MEMORY, key="m", cached=False,
            memory=predict_memory(dlrm_graph),
        )
        restored = WhatIfResponse.from_dict(response.to_dict())
        assert restored.memory == response.memory

    def test_stats_roundtrip_and_render(
        self, registry, overhead_db, dlrm_graph
    ):
        with PredictionService(
            registries={"V100": registry},
            overhead_dbs={"individual": overhead_db},
        ) as service:
            service.predict_all(
                [WhatIfRequest(graph=dlrm_graph) for _ in range(3)]
            )
            stats = service.stats()
        restored = ServiceStats.from_dict(stats.to_dict())
        assert restored.to_dict() == stats.to_dict()
        rendered = render_stats(stats)
        assert "memo tier" in rendered
        assert "e2e predictions" in rendered
        assert sum(stats.requests.values()) == 3

    def test_memo_info_roundtrip(self):
        info = MemoInfo(hits=3, misses=2, size=2, max_size=8,
                        evictions=1, invalidations=4)
        assert MemoInfo.from_dict(info.to_dict()) == info
        assert info.hit_rate == pytest.approx(0.6)


class TestServerSnapshotGolden:
    def test_snapshot_matches_golden(
        self, registry, overhead_db, dlrm_graph, golden
    ):
        """One full server interaction, pinned numerically.

        Latency numbers are wall-clock and excluded; keys, payloads and
        deterministic counters are all golden-checked.
        """
        with PredictionService(
            registries={"V100": registry},
            overhead_dbs={"individual": overhead_db},
        ) as service:
            responses = {
                kind: service.predict(
                    WhatIfRequest(graph=dlrm_graph, kind=kind)
                )
                for kind in REQUEST_KINDS
            }
            repeat = service.predict(WhatIfRequest(graph=dlrm_graph))
            memo = service.memo_info()
        assert repeat.cached is True
        golden(
            "service_snapshot",
            {
                "responses": {
                    kind: responses[kind].to_dict() for kind in REQUEST_KINDS
                },
                "repeat_key": repeat.key,
                "memo": {
                    "hits": memo.hits,
                    "misses": memo.misses,
                    "size": memo.size,
                },
            },
        )
