"""Unit tests for kernel performance models (heuristic + ML + registry)."""

import numpy as np
import pytest

from repro.metrics import ErrorStats, gmae
from repro.microbench import measure_peaks, run_microbenchmark
from repro.ops import KernelCall, KernelType, gemm_kernel
from repro.perfmodels import (
    ConcatModel,
    EnhancedEmbeddingModel,
    MemcpyModel,
    MlKernelModel,
    MlpConfig,
    MlpRegressor,
    PerfModelRegistry,
    PlainEmbeddingModel,
    RooflineElementwiseModel,
    grid_search,
    warp_traffic_bytes,
)


@pytest.fixture(scope="module")
def peaks(device):
    return measure_peaks(device)


class TestWarpTraffic:
    def test_forward_components(self):
        t = warp_traffic_bytes({"L": 10, "D": 64}, backward=False)
        assert t["table_offsets"] == 32.0
        assert t["offsets"] == 64.0
        assert t["indices"] == 64.0  # ceil(40/32)*32
        assert t["outputs"] == 256.0
        assert t["weights"] == 2560.0  # 256 per lookup * 10

    def test_backward_weights(self):
        t = warp_traffic_bytes({"L": 10, "D": 64}, backward=True)
        assert t["weights"] == np.ceil(2 * 4 * 10 * 64 / 32) * 32


class TestEmbeddingModels:
    def test_plain_accurate_on_large_tables(self, device, peaks):
        ds = run_microbenchmark(device, KernelType.EMBEDDING_FWD, scale=0.1, seed=2)
        model = PlainEmbeddingModel(device.gpu, peaks, backward=False)
        big = [r for r in ds.records if r.params["E"] > 100_000]
        stats = ErrorStats.from_samples(
            [model.predict_us(r.params) for r in big],
            [r.measured_us for r in big],
        )
        assert stats.gmae < 0.10  # Table IV EL-FL band

    def test_enhanced_beats_plain_overall(self, device, peaks):
        ds = run_microbenchmark(device, KernelType.EMBEDDING_FWD, scale=0.1, seed=2)
        plain = PlainEmbeddingModel(device.gpu, peaks, backward=False)
        enhanced = EnhancedEmbeddingModel(device.gpu, peaks, backward=False)
        acts = [r.measured_us for r in ds.records]
        err_plain = ErrorStats.from_samples(
            [plain.predict_us(r.params) for r in ds.records], acts
        ).mean
        err_enh = ErrorStats.from_samples(
            [enhanced.predict_us(r.params) for r in ds.records], acts
        ).mean
        assert err_enh < err_plain  # the paper's Table IV conclusion

    def test_hit_rate_bounds(self, device, peaks):
        model = EnhancedEmbeddingModel(device.gpu, peaks, backward=False)
        tiny = model.hit_rate({"B": 512, "E": 100, "L": 1, "D": 64,
                               "rows_per_block": 32})
        huge = model.hit_rate({"B": 512, "E": 50_000_000, "L": 1, "D": 64,
                               "rows_per_block": 32})
        assert 0.0 <= huge < tiny <= 1.0

    def test_backward_model_type(self, device, peaks):
        m = EnhancedEmbeddingModel(device.gpu, peaks, backward=True)
        assert m.kernel_type == KernelType.EMBEDDING_BWD


class TestRooflines:
    def test_elementwise_accuracy(self, device, peaks):
        ds = run_microbenchmark(device, KernelType.ELEMENTWISE, scale=0.1, seed=3)
        model = RooflineElementwiseModel(peaks)
        stats = ErrorStats.from_samples(
            [model.predict_us(r.params) for r in ds.records],
            [r.measured_us for r in ds.records],
        )
        assert stats.gmae < 0.10

    def test_memcpy_accuracy(self, device, peaks):
        ds = run_microbenchmark(device, KernelType.MEMCPY, scale=0.1, seed=3)
        model = MemcpyModel(peaks)
        stats = ErrorStats.from_samples(
            [model.predict_us(r.params) for r in ds.records],
            [r.measured_us for r in ds.records],
        )
        assert stats.gmae < 0.10

    def test_concat_accuracy(self, device, peaks):
        ds = run_microbenchmark(device, KernelType.CONCAT, scale=0.1, seed=3)
        model = ConcatModel(peaks)
        stats = ErrorStats.from_samples(
            [model.predict_us(r.params) for r in ds.records],
            [r.measured_us for r in ds.records],
        )
        assert stats.gmae < 0.12

    def test_compute_bound_elementwise(self, peaks):
        model = RooflineElementwiseModel(peaks)
        memory = model.predict_us(
            {"flop": 1.0, "bytes_read": 1e8, "bytes_write": 1e8}
        )
        compute = model.predict_us(
            {"flop": 1e12, "bytes_read": 4.0, "bytes_write": 4.0}
        )
        assert compute > memory


class TestMlp:
    def test_fits_power_law(self):
        """The regressor must capture a smooth log-log relationship."""
        rng = np.random.default_rng(0)
        X = rng.integers(16, 4096, size=(400, 2)).astype(float)
        y = 0.01 * X[:, 0] ** 0.9 * X[:, 1] ** 0.5 + 2.0
        model = MlpRegressor(MlpConfig(num_layers=3, num_neurons=64,
                                       epochs=200, seed=0))
        model.fit(X[:350], y[:350])
        err = gmae(model.predict(X[350:]).tolist(), y[350:].tolist())
        assert err < 0.08

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            MlpRegressor().predict(np.ones((1, 2)))

    def test_nonpositive_targets_rejected(self):
        with pytest.raises(ValueError):
            MlpRegressor().fit(np.ones((3, 2)), np.array([1.0, 0.0, 2.0]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MlpRegressor().fit(np.ones((3, 2)), np.ones(4))

    def test_sgd_lr_scaling(self):
        cfg = MlpConfig(optimizer="sgd", learning_rate=1e-3)
        assert cfg.effective_learning_rate == pytest.approx(1e-2)

    def test_bad_optimizer_rejected(self):
        with pytest.raises(ValueError):
            MlpConfig(optimizer="rmsprop")

    def test_deterministic_training(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(1, 100, size=(100, 2))
        y = X[:, 0] + X[:, 1]
        cfg = MlpConfig(epochs=30, seed=5)
        a = MlpRegressor(cfg).fit(X, y).predict(X[:5])
        b = MlpRegressor(cfg).fit(X, y).predict(X[:5])
        assert np.allclose(a, b)


class TestGridSearch:
    def test_small_dataset_rejected(self, device):
        ds = run_microbenchmark(
            device, KernelType.GEMM,
            configs=[{"m": 64, "n": 64, "k": 64, "batch": 1}] * 5,
        )
        with pytest.raises(ValueError):
            grid_search(ds)

    def test_leaderboard_sorted(self, device):
        ds = run_microbenchmark(device, KernelType.TRIL_FWD, scale=0.15, seed=4)
        space = {"num_layers": (3,), "num_neurons": (64, 128),
                 "optimizer": ("adam",), "learning_rate": (2e-3,)}
        result = grid_search(ds, space=space, epochs=60, seed=0)
        errors = [e for _, e in result.leaderboard]
        assert errors == sorted(errors)
        assert result.val_gmae == errors[0]


class TestRegistry:
    def test_dispatch(self, registry):
        k = gemm_kernel(512, 512, 512)
        assert registry.predict_us(k) > 0

    def test_missing_model_rejected(self):
        empty = PerfModelRegistry()
        with pytest.raises(KeyError):
            empty.predict_us(gemm_kernel(2, 2, 2))

    def test_wrong_type_rejected(self, registry):
        model = registry.model_for(KernelType.GEMM)
        bad = KernelCall(KernelType.CONCAT, {"bytes_total": 8.0, "num_inputs": 2})
        with pytest.raises(ValueError):
            model.predict_kernel(bad)

    def test_all_dlrm_kernel_types_covered(self, registry, dlrm_graph):
        for node in dlrm_graph.nodes:
            for kernel in node.op.kernel_calls():
                assert registry.predict_us(kernel) > 0

    def test_ml_model_missing_feature(self, registry):
        model = registry.model_for(KernelType.GEMM)
        with pytest.raises(KeyError):
            model.predict_us({"m": 2, "n": 2})


class TestMlKernelModelAccuracy:
    def test_gemm_under_10pct_gmae(self, device, registry):
        """The paper's headline kernel bar, on held-out configs."""
        ds = run_microbenchmark(device, KernelType.GEMM, scale=0.08, seed=77)
        model = registry.model_for(KernelType.GEMM)
        stats = ErrorStats.from_samples(
            [model.predict_us(r.params) for r in ds.records],
            [r.measured_us for r in ds.records],
        )
        assert stats.gmae < 0.15  # relaxed: test registry trains tiny

    def test_tril_models_accurate(self, device, registry):
        for kt in (KernelType.TRIL_FWD, KernelType.TRIL_BWD):
            ds = run_microbenchmark(device, kt, scale=0.08, seed=78)
            model = registry.model_for(kt)
            stats = ErrorStats.from_samples(
                [model.predict_us(r.params) for r in ds.records],
                [r.measured_us for r in ds.records],
            )
            assert stats.gmae < 0.10
