"""Unit tests for optimizer-step operators."""

import pytest

from repro.ops import OptimizerStep, OptimizerZeroGrad


class TestOptimizerStep:
    def test_one_kernel_per_parameter(self):
        op = OptimizerStep([(10, 10), (10,), (5, 10)])
        assert len(op.kernel_calls()) == 3

    def test_sgd_traffic(self):
        op = OptimizerStep([(100,)])
        (k,) = op.kernel_calls()
        assert k.params["bytes_read"] == 2 * 400  # param + grad
        assert k.params["bytes_write"] == 400
        assert k.params["flop"] == 200

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            OptimizerStep([])


class TestZeroGrad:
    def test_write_only(self):
        op = OptimizerZeroGrad([(100,), (2, 2)])
        ks = op.kernel_calls()
        assert len(ks) == 2
        assert all(k.params["bytes_read"] == 0 for k in ks)
        assert ks[0].params["bytes_write"] == 400

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            OptimizerZeroGrad([])
