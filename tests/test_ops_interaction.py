"""Unit tests for feature-interaction (tril) operators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ops import Index, IndexBackward, KernelType, tril_output_size


class TestTrilSize:
    def test_known_values(self):
        assert tril_output_size(1) == 0
        assert tril_output_size(2) == 1
        assert tril_output_size(9) == 36
        assert tril_output_size(27) == 351

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            tril_output_size(0)

    @given(st.integers(min_value=1, max_value=500))
    def test_matches_pair_count(self, f):
        assert tril_output_size(f) == f * (f - 1) // 2


class TestIndex:
    def test_shapes(self):
        op = Index(B=64, F=9)
        assert op.inputs[0].shape == (64, 9, 9)
        assert op.outputs[0].shape == (64, 36)

    def test_kernel(self):
        (k,) = Index(64, 9).kernel_calls()
        assert k.kernel_type == KernelType.TRIL_FWD
        assert k.params == {"B": 64, "F": 9}

    def test_rescale(self):
        assert Index(64, 9).rescale_batch(64, 32).B == 32


class TestIndexBackward:
    def test_shapes_inverse_of_forward(self):
        fwd = Index(B=64, F=9)
        bwd = IndexBackward(B=64, F=9)
        assert bwd.inputs[0].shape == fwd.outputs[0].shape
        assert bwd.outputs[0].shape == fwd.inputs[0].shape

    def test_kernel(self):
        (k,) = IndexBackward(64, 9).kernel_calls()
        assert k.kernel_type == KernelType.TRIL_BWD
