"""Unit tests for convolution / batch-norm / pooling operators."""

import pytest

from repro.ops import (
    AvgPool2d,
    AvgPool2dBackward,
    BatchNorm2d,
    BatchNormBackward,
    Conv2d,
    Conv2dBackward,
    KernelType,
    MaxPool2d,
    MaxPool2dBackward,
    conv_output_hw,
)


class TestConvOutput:
    def test_same_padding(self):
        assert conv_output_hw(56, 56, 3, 3, 1, 1) == (56, 56)

    def test_stride_two(self):
        assert conv_output_hw(224, 224, 7, 7, 2, 3) == (112, 112)

    def test_asymmetric_pad(self):
        assert conv_output_hw(17, 17, 1, 7, 1, (0, 3)) == (17, 17)

    def test_empty_output_rejected(self):
        with pytest.raises(ValueError):
            conv_output_hw(2, 2, 5, 5, 1, 0)


class TestConv2d:
    def test_shapes(self):
        op = Conv2d(8, 3, 224, 224, 64, 7, 7, stride=2, pad=3)
        assert op.outputs[0].shape == (8, 64, 112, 112)
        assert op.inputs[1].shape == (64, 3, 7, 7)

    def test_kernel_params_include_pads(self):
        op = Conv2d(8, 16, 17, 17, 32, 1, 7, pad=(0, 3))
        (k,) = op.kernel_calls()
        assert k.kernel_type == KernelType.CONV
        assert k.params["pad_h"] == 0
        assert k.params["pad_w"] == 3

    def test_rescale(self):
        op = Conv2d(8, 3, 32, 32, 16, 3, 3, pad=1).rescale_batch(8, 4)
        assert op.n == 4


class TestConvBackward:
    def test_two_conv_kernels(self):
        ks = Conv2dBackward(8, 3, 32, 32, 16, 3, 3, pad=1).kernel_calls()
        assert len(ks) == 2
        assert {k.name for k in ks} == {"conv2d_dgrad", "conv2d_wgrad"}

    def test_output_shapes(self):
        op = Conv2dBackward(8, 3, 32, 32, 16, 3, 3, pad=1)
        dx, dw = op.outputs
        assert dx.shape == (8, 3, 32, 32)
        assert dw.shape == (16, 3, 3, 3)


class TestBatchNorm:
    def test_forward_own_kernel_type(self):
        (k,) = BatchNorm2d(8, 64, 56, 56).kernel_calls()
        assert k.kernel_type == KernelType.BATCHNORM

    def test_backward(self):
        op = BatchNormBackward(8, 64, 56, 56)
        assert op.outputs[0].shape == (8, 64, 56, 56)


class TestPooling:
    def test_maxpool_shapes(self):
        op = MaxPool2d(8, 64, 112, 112, kernel=3, stride=2, pad=1)
        assert op.outputs[0].shape == (8, 64, 56, 56)

    def test_maxpool_backward_restores_shape(self):
        op = MaxPool2dBackward(8, 64, 112, 112, kernel=3, stride=2, pad=1)
        assert op.outputs[0].shape == (8, 64, 112, 112)

    def test_global_avgpool(self):
        op = AvgPool2d(8, 2048, 7, 7)
        assert op.outputs[0].shape == (8, 2048, 1, 1)

    def test_avgpool_backward(self):
        op = AvgPool2dBackward(8, 2048, 7, 7)
        assert op.outputs[0].shape == (8, 2048, 7, 7)
