"""Golden-file regression tests: known numbers, not re-derived ones.

Snapshots of single-GPU and multi-GPU predictions live under
``tests/goldens/``.  A refactor that is supposed to be numerically
neutral (like the overlap-engine rewrite of the synchronous path) is
proven so by these files: run ``pytest --update-goldens`` only after an
*intentional* numeric change, and let CI diff everything else against
the stored numbers.
"""

from __future__ import annotations

import pytest

from repro.e2e import predict_e2e
from repro.hardware import TESLA_V100
from repro.models import MODE_INFERENCE, build_model
from repro.models.dlrm import DLRM_DEFAULT
from repro.multigpu import (
    NVLINK,
    CollectiveModel,
    GroundTruthCollectives,
    MultiGpuSimulator,
    build_multi_gpu_dlrm_plan,
    predict_multi_gpu,
)

#: One representative (model, batch) per workload family.
SINGLE_GPU_CASES = [
    ("DLRM_default", 512),
    ("resnet50", 32),
    ("Transformer", 64),
]


def _prediction_payload(pred) -> dict:
    return {
        "total_us": pred.total_us,
        "cpu_us": pred.cpu_us,
        "gpu_us": pred.gpu_us,
        "active_us": pred.active_us,
        "num_ops": pred.num_ops,
        "num_kernels": pred.num_kernels,
    }


def _multi_payload(result) -> dict:
    return {
        "iteration_us": result.iteration_us,
        "phase_us": list(result.phase_us),
        "collective_us": list(result.collective_us),
        "compute_us": result.compute_us,
        "communication_us": result.communication_us,
        "exposed_comm_us": result.exposed_comm_us,
        "communication_fraction": result.communication_fraction,
        "overlap": result.overlap,
    }


class TestSingleGpuGoldens:
    @pytest.mark.parametrize("model,batch", SINGLE_GPU_CASES)
    def test_prediction(self, model, batch, registry, overhead_db, golden):
        pred = predict_e2e(build_model(model, batch), registry, overhead_db)
        golden(f"single_{model}_b{batch}", _prediction_payload(pred))

    def test_inference_prediction(self, registry, overhead_db, golden):
        pred = predict_e2e(
            build_model("DLRM_default", 512, mode=MODE_INFERENCE),
            registry, overhead_db,
        )
        golden("single_DLRM_default_b512_infer", _prediction_payload(pred))


class TestMultiGpuGoldens:
    @pytest.fixture(scope="class")
    def collective_model(self):
        return CollectiveModel.calibrate(GroundTruthCollectives(NVLINK), 4)

    @pytest.mark.parametrize("overlap", ["none", "full"])
    def test_prediction(
        self, overlap, registry, overhead_db, collective_model, golden
    ):
        plan = build_multi_gpu_dlrm_plan(
            DLRM_DEFAULT, 1024, 4, overlap=overlap
        )
        pred = predict_multi_gpu(plan, registry, overhead_db, collective_model)
        golden(f"multigpu_DLRM_default_b1024_x4_{overlap}",
               _multi_payload(pred))

    @pytest.mark.parametrize("overlap", ["none", "full"])
    def test_inference_prediction(
        self, overlap, registry, overhead_db, collective_model, golden
    ):
        plan = build_multi_gpu_dlrm_plan(
            DLRM_DEFAULT, 1024, 4, overlap=overlap, mode=MODE_INFERENCE
        )
        pred = predict_multi_gpu(plan, registry, overhead_db, collective_model)
        golden(f"multigpu_DLRM_default_b1024_x4_infer_{overlap}",
               _multi_payload(pred))

    @pytest.mark.parametrize("overlap", ["none", "full"])
    def test_simulation(self, overlap, golden):
        plan = build_multi_gpu_dlrm_plan(
            DLRM_DEFAULT, 1024, 2, overlap=overlap
        )
        truth = MultiGpuSimulator(TESLA_V100, NVLINK, seed=9).run(plan, 2)
        golden(f"multigpu_sim_DLRM_default_b1024_x2_{overlap}",
               _multi_payload(truth))

    @pytest.mark.parametrize("overlap", ["none", "full"])
    def test_inference_simulation(self, overlap, golden):
        plan = build_multi_gpu_dlrm_plan(
            DLRM_DEFAULT, 1024, 2, overlap=overlap, mode=MODE_INFERENCE
        )
        truth = MultiGpuSimulator(TESLA_V100, NVLINK, seed=9).run(plan, 2)
        golden(f"multigpu_sim_DLRM_default_b1024_x2_infer_{overlap}",
               _multi_payload(truth))
