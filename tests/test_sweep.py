"""Unit + integration tests for the repro.sweep grid engine."""

import json

import pytest

from repro.e2e import predict_e2e
from repro.graph.transforms import fuse_embedding_bags, rescale_batch
from repro.models import build_model
from repro.models.dlrm import DLRM_DEFAULT, build_dlrm_graph
from repro.sweep import (
    IDENTITY_TRANSFORM,
    SweepEngine,
    SweepResult,
    evaluate_graphs,
    sweep_batch_sizes,
)


@pytest.fixture(scope="module")
def unfused_graph():
    cfg = DLRM_DEFAULT.with_overrides(fused_embedding=False, name="unfused")
    return build_dlrm_graph(cfg, 256)


class TestSweepEngine:
    def test_grid_shape_and_order(self, dlrm_graph, registry, overhead_db):
        engine = SweepEngine(
            registries={"V100": registry},
            overhead_dbs={"indiv": overhead_db, "shared": overhead_db},
        )
        result = engine.run(dlrm_graph, 512, [256, 512])
        assert len(result) == 1 * 2 * 1 * 2  # transform x batch x gpu x db
        assert result.axis_values("batch_size") == (256, 512)
        assert result.axis_values("transform") == (IDENTITY_TRANSFORM,)
        assert result.axis_values("overheads") == ("indiv", "shared")

    def test_matches_direct_predict_e2e(self, dlrm_graph, registry, overhead_db):
        result = sweep_batch_sizes(
            dlrm_graph, 512, [256, 1024], registry, overhead_db
        )
        for record in result:
            direct = predict_e2e(
                rescale_batch(dlrm_graph, 512, record.point.batch_size),
                registry,
                overhead_db,
            )
            assert record.prediction.total_us == direct.total_us

    def test_transform_axis(self, unfused_graph, registry, overhead_db):
        engine = SweepEngine(
            registries={"V100": registry},
            overhead_dbs={"indiv": overhead_db},
            transforms={
                IDENTITY_TRANSFORM: lambda g: g,
                "fused": fuse_embedding_bags,
            },
        )
        result = engine.run(unfused_graph, 256, [256])
        plain = result.filter(transform=IDENTITY_TRANSFORM).records[0]
        fused = result.filter(transform="fused").records[0]
        assert fused.prediction.total_us < plain.prediction.total_us

    def test_shared_cache_across_points(self, dlrm_graph, registry, overhead_db):
        registry.cache_clear()
        sweep_batch_sizes(
            dlrm_graph, 512, [256, 512, 1024, 2048], registry, overhead_db
        )
        info = registry.cache_info()
        # Within-graph duplicates (repeated layers/tables) guarantee
        # cache hits even on the first pass; re-sweeping is all hits.
        assert info.hits > 0
        misses_first = info.misses
        sweep_batch_sizes(
            dlrm_graph, 512, [256, 512, 1024, 2048], registry, overhead_db
        )
        assert registry.cache_info().misses == misses_first

    def test_empty_axes_rejected(self, dlrm_graph, registry, overhead_db):
        with pytest.raises(ValueError):
            SweepEngine(registries={}, overhead_dbs={"d": overhead_db})
        with pytest.raises(ValueError):
            SweepEngine(registries={"g": registry}, overhead_dbs={})
        engine = SweepEngine(
            registries={"g": registry}, overhead_dbs={"d": overhead_db}
        )
        with pytest.raises(ValueError):
            engine.run(dlrm_graph, 512, [])

    def test_run_graphs_mode(self, registry, overhead_db):
        graphs = {
            "b256": build_model("DLRM_default", 256),
            "b2048": build_model("DLRM_default", 2048),
        }
        predictions = evaluate_graphs(graphs, registry, overhead_db)
        assert set(predictions) == {"b256", "b2048"}
        assert (
            predictions["b2048"].total_us > predictions["b256"].total_us
        )


class TestSweepResult:
    @pytest.fixture(scope="class")
    def result(self, dlrm_graph, registry, overhead_db):
        return sweep_batch_sizes(
            dlrm_graph, 512, [256, 512, 1024], registry, overhead_db,
            gpu="V100",
        )

    def test_best_is_max_throughput(self, result):
        best = result.best()
        assert best.samples_per_second == max(
            r.samples_per_second for r in result
        )

    def test_best_custom_key(self, result):
        fastest = result.best(key=lambda r: -r.prediction.total_us)
        assert fastest.point.batch_size == 256

    def test_best_of_empty_rejected(self):
        with pytest.raises(ValueError):
            SweepResult([]).best()

    def test_filter(self, result):
        sub = result.filter(batch_size=512)
        assert len(sub) == 1
        assert sub.records[0].point.batch_size == 512
        assert len(result.filter(gpu="nope")) == 0

    def test_json_rows(self, result):
        rows = json.loads(result.to_json())
        assert len(rows) == 3
        for row in rows:
            assert row["gpu"] == "V100"
            assert row["total_us"] > 0
            assert row["samples_per_second"] == pytest.approx(
                row["batch_size"] / (row["total_us"] * 1e-6)
            )


class TestConsumersRewired:
    def test_batch_size_sweep_unchanged_api(
        self, dlrm_graph, registry, overhead_db
    ):
        from repro.codesign import batch_size_sweep

        points = batch_size_sweep(
            dlrm_graph, 512, [256, 512], registry, overhead_db
        )
        assert [p.batch_size for p in points] == [256, 512]
        direct = predict_e2e(
            rescale_batch(dlrm_graph, 512, 256), registry, overhead_db
        )
        assert points[0].prediction.total_us == direct.total_us

    def test_sharding_batched_costs_match_scalar(self, registry):
        from repro.codesign import (
            TableSpec,
            predict_table_cost_us,
            predict_table_costs_us,
        )

        tables = [
            TableSpec(rows=r, dim=64, lookups=8)
            for r in (1_000_000, 200_000, 1_000)
        ]
        batched = predict_table_costs_us(tables, 1024, registry)
        for table, cost in zip(tables, batched):
            assert predict_table_cost_us(table, 1024, registry) == cost

    def test_scaling_curve_prewarms_cache(self, registry, overhead_db):
        from repro.models.dlrm import DLRM_DEFAULT
        from repro.multigpu import build_multi_gpu_dlrm_plan
        from repro.multigpu.interconnect import CollectiveModel
        from repro.multigpu.predict import scaling_curve

        registry.cache_clear()
        curve = scaling_curve(
            lambda n: build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, n),
            (1, 2),
            registry,
            overhead_db,
            lambda n: CollectiveModel(
                measured_bw_gbs=40.0, base_latency_us=5.0
            ),
        )
        assert set(curve) == {1, 2}
        assert all(p.iteration_us > 0 for p in curve.values())
        assert registry.cache_info().hits > 0
