"""Unit + integration tests for the repro.sweep grid engine."""

import json

import pytest

from repro.e2e import predict_e2e
from repro.graph.transforms import fuse_embedding_bags, rescale_batch
from repro.models import build_model
from repro.models.dlrm import DLRM_DEFAULT, build_dlrm_graph
from repro.sweep import (
    IDENTITY_TRANSFORM,
    SweepEngine,
    SweepResult,
    evaluate_graphs,
    sweep_batch_sizes,
)


@pytest.fixture(scope="module")
def unfused_graph():
    cfg = DLRM_DEFAULT.with_overrides(fused_embedding=False, name="unfused")
    return build_dlrm_graph(cfg, 256)


class TestSweepEngine:
    def test_grid_shape_and_order(self, dlrm_graph, registry, overhead_db):
        engine = SweepEngine(
            registries={"V100": registry},
            overhead_dbs={"indiv": overhead_db, "shared": overhead_db},
        )
        result = engine.run(dlrm_graph, 512, [256, 512])
        assert len(result) == 1 * 2 * 1 * 2  # transform x batch x gpu x db
        assert result.axis_values("batch_size") == (256, 512)
        assert result.axis_values("transform") == (IDENTITY_TRANSFORM,)
        assert result.axis_values("overheads") == ("indiv", "shared")

    def test_matches_direct_predict_e2e(self, dlrm_graph, registry, overhead_db):
        result = sweep_batch_sizes(
            dlrm_graph, 512, [256, 1024], registry, overhead_db
        )
        for record in result:
            direct = predict_e2e(
                rescale_batch(dlrm_graph, 512, record.point.batch_size),
                registry,
                overhead_db,
            )
            assert record.prediction.total_us == direct.total_us

    def test_transform_axis(self, unfused_graph, registry, overhead_db):
        engine = SweepEngine(
            registries={"V100": registry},
            overhead_dbs={"indiv": overhead_db},
            transforms={
                IDENTITY_TRANSFORM: lambda g: g,
                "fused": fuse_embedding_bags,
            },
        )
        result = engine.run(unfused_graph, 256, [256])
        plain = result.filter(transform=IDENTITY_TRANSFORM).records[0]
        fused = result.filter(transform="fused").records[0]
        assert fused.prediction.total_us < plain.prediction.total_us

    def test_shared_cache_across_points(self, dlrm_graph, registry, overhead_db):
        registry.cache_clear()
        sweep_batch_sizes(
            dlrm_graph, 512, [256, 512, 1024, 2048], registry, overhead_db
        )
        info = registry.cache_info()
        # Within-graph duplicates (repeated layers/tables) guarantee
        # cache hits even on the first pass; re-sweeping is all hits.
        assert info.hits > 0
        misses_first = info.misses
        sweep_batch_sizes(
            dlrm_graph, 512, [256, 512, 1024, 2048], registry, overhead_db
        )
        assert registry.cache_info().misses == misses_first

    def test_empty_axes_rejected(self, dlrm_graph, registry, overhead_db):
        with pytest.raises(ValueError):
            SweepEngine(registries={}, overhead_dbs={"d": overhead_db})
        with pytest.raises(ValueError):
            SweepEngine(registries={"g": registry}, overhead_dbs={})
        engine = SweepEngine(
            registries={"g": registry}, overhead_dbs={"d": overhead_db}
        )
        with pytest.raises(ValueError):
            engine.run(dlrm_graph, 512, [])

    def test_empty_graph_and_plan_axes_rejected(self, registry, overhead_db):
        """Empty grids fail loudly instead of returning an empty table."""
        engine = SweepEngine(
            registries={"g": registry}, overhead_dbs={"d": overhead_db}
        )
        with pytest.raises(ValueError, match="at least one graph"):
            engine.run_graphs({}, 512)
        with pytest.raises(ValueError, match="at least one multi-GPU plan"):
            engine.run_multi_gpu({}, lambda n: None)

    def test_run_graphs_mode(self, registry, overhead_db):
        graphs = {
            "b256": build_model("DLRM_default", 256),
            "b2048": build_model("DLRM_default", 2048),
        }
        predictions = evaluate_graphs(graphs, registry, overhead_db)
        assert set(predictions) == {"b256", "b2048"}
        assert (
            predictions["b2048"].total_us > predictions["b256"].total_us
        )


class TestSweepResult:
    @pytest.fixture(scope="class")
    def result(self, dlrm_graph, registry, overhead_db):
        return sweep_batch_sizes(
            dlrm_graph, 512, [256, 512, 1024], registry, overhead_db,
            gpu="V100",
        )

    def test_best_is_max_throughput(self, result):
        best = result.best()
        assert best.samples_per_second == max(
            r.samples_per_second for r in result
        )

    def test_best_custom_key(self, result):
        fastest = result.best(key=lambda r: -r.prediction.total_us)
        assert fastest.point.batch_size == 256

    def test_best_of_empty_rejected(self):
        with pytest.raises(ValueError):
            SweepResult([]).best()

    def test_filter(self, result):
        sub = result.filter(batch_size=512)
        assert len(sub) == 1
        assert sub.records[0].point.batch_size == 512
        assert len(result.filter(gpu="nope")) == 0

    def test_json_rows(self, result):
        rows = json.loads(result.to_json())
        assert len(rows) == 3
        for row in rows:
            assert row["gpu"] == "V100"
            assert row["total_us"] > 0
            assert row["samples_per_second"] == pytest.approx(
                row["batch_size"] / (row["total_us"] * 1e-6)
            )


class TestConsumersRewired:
    def test_batch_size_sweep_unchanged_api(
        self, dlrm_graph, registry, overhead_db
    ):
        from repro.codesign import batch_size_sweep

        points = batch_size_sweep(
            dlrm_graph, 512, [256, 512], registry, overhead_db
        )
        assert [p.batch_size for p in points] == [256, 512]
        direct = predict_e2e(
            rescale_batch(dlrm_graph, 512, 256), registry, overhead_db
        )
        assert points[0].prediction.total_us == direct.total_us

    def test_sharding_batched_costs_match_scalar(self, registry):
        from repro.codesign import (
            TableSpec,
            predict_table_cost_us,
            predict_table_costs_us,
        )

        tables = [
            TableSpec(rows=r, dim=64, lookups=8)
            for r in (1_000_000, 200_000, 1_000)
        ]
        batched = predict_table_costs_us(tables, 1024, registry)
        for table, cost in zip(tables, batched):
            assert predict_table_cost_us(table, 1024, registry) == cost

    def test_scaling_curve_prewarms_cache(self, registry, overhead_db):
        from repro.models.dlrm import DLRM_DEFAULT
        from repro.multigpu import build_multi_gpu_dlrm_plan
        from repro.multigpu.interconnect import CollectiveModel
        from repro.multigpu.predict import scaling_curve

        registry.cache_clear()
        curve = scaling_curve(
            lambda n: build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, n),
            (1, 2),
            registry,
            overhead_db,
            lambda n: CollectiveModel(
                measured_bw_gbs=40.0, base_latency_us=5.0
            ),
        )
        assert set(curve) == {1, 2}
        assert all(p.iteration_us > 0 for p in curve.values())
        assert registry.cache_info().hits > 0


class TestMultiGpuSweep:
    """Batched-warmup + cache-reuse coverage across multi-GPU points."""

    @pytest.fixture(scope="class")
    def collective_model_for(self):
        from repro.multigpu.interconnect import CollectiveModel

        def factory(num_devices):
            return CollectiveModel(measured_bw_gbs=40.0, base_latency_us=5.0)

        return factory

    def test_scaling_curve_warmup_is_bit_identical_to_direct(
        self, registry, overhead_db, collective_model_for
    ):
        """The batched prewarm must not perturb any per-count number."""
        from repro.models.dlrm import DLRM_DEFAULT
        from repro.multigpu import build_multi_gpu_dlrm_plan, predict_multi_gpu
        from repro.multigpu.predict import scaling_curve

        build = lambda n: build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, n)  # noqa: E731
        registry.cache_clear()
        curve = scaling_curve(
            build, (1, 2, 4), registry, overhead_db, collective_model_for
        )
        for n in (1, 2, 4):
            direct = predict_multi_gpu(
                build(n), registry, overhead_db, collective_model_for(n)
            )
            assert curve[n].iteration_us == direct.iteration_us
            assert curve[n].per_device_phase_us == direct.per_device_phase_us

    def test_scaling_curve_overlap_override(
        self, registry, overhead_db, collective_model_for
    ):
        from repro.models.dlrm import DLRM_DEFAULT
        from repro.multigpu import build_multi_gpu_dlrm_plan
        from repro.multigpu.predict import scaling_curve

        build = lambda n: build_multi_gpu_dlrm_plan(  # noqa: E731
            DLRM_DEFAULT, 1024, n, overlap="full"
        )
        over = scaling_curve(
            build, (2, 4), registry, overhead_db, collective_model_for
        )
        sync = scaling_curve(
            build, (2, 4), registry, overhead_db, collective_model_for,
            overlap="none",
        )
        for n in (2, 4):
            assert over[n].overlap == "full"
            assert sync[n].overlap == "none"
            assert over[n].iteration_us <= sync[n].iteration_us

    def test_scaling_curve_per_device_registries(
        self, registry, overhead_db, collective_model_for
    ):
        """A per-device registry sequence prewarms and predicts."""
        from repro.models.dlrm import DLRM_DEFAULT
        from repro.multigpu import build_multi_gpu_dlrm_plan
        from repro.multigpu.predict import scaling_curve

        curve = scaling_curve(
            lambda n: build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, n),
            (2,),
            [registry, registry],
            [overhead_db, overhead_db],
            collective_model_for,
        )
        assert curve[2].iteration_us > 0

    def test_run_multi_gpu_grid_and_cache_reuse(
        self, registry, overhead_db, collective_model_for
    ):
        from repro.models.dlrm import DLRM_DEFAULT
        from repro.multigpu import build_multi_gpu_dlrm_plan
        from repro.sweep import SweepEngine

        engine = SweepEngine(
            registries={"V100": registry},
            overhead_dbs={"indiv": overhead_db},
        )
        plans = {
            "sync_x2": build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 2),
            "overlap_x2": build_multi_gpu_dlrm_plan(
                DLRM_DEFAULT, 1024, 2, overlap="full"
            ),
        }
        registry.cache_clear()
        result = engine.run_multi_gpu(plans, collective_model_for)
        # plans x fleets x overlap policies
        assert len(result) == 2 * 1 * 2
        assert result.axis_values("overlap") == ("none", "full")
        assert result.axis_values("fleet") == ("V100",)
        misses_first = registry.cache_info().misses
        assert registry.cache_info().hits > 0
        # Re-running the whole multi-GPU grid is pure cache hits.
        engine.run_multi_gpu(plans, collective_model_for)
        assert registry.cache_info().misses == misses_first

    def test_run_multi_gpu_overlap_policy_effect(
        self, registry, overhead_db, collective_model_for
    ):
        from repro.models.dlrm import DLRM_DEFAULT
        from repro.multigpu import build_multi_gpu_dlrm_plan
        from repro.sweep import SweepEngine

        engine = SweepEngine(
            registries={"V100": registry},
            overhead_dbs={"indiv": overhead_db},
        )
        plans = {
            "x4": build_multi_gpu_dlrm_plan(
                DLRM_DEFAULT, 1024, 4, overlap="full"
            ),
        }
        result = engine.run_multi_gpu(plans, collective_model_for)
        sync = result.filter(overlap="none").records[0]
        over = result.filter(overlap="full").records[0]
        assert over.prediction.iteration_us <= sync.prediction.iteration_us
        best = result.best()
        assert best.prediction.iteration_us == min(
            r.prediction.iteration_us for r in result
        )
        rows = json.loads(result.to_json())
        assert {row["overlap"] for row in rows} == {"none", "full"}

    def test_run_multi_gpu_heterogeneous_fleet_labels(
        self, registry, overhead_db, collective_model_for
    ):
        from repro.models.dlrm import DLRM_DEFAULT
        from repro.multigpu import build_multi_gpu_dlrm_plan
        from repro.sweep import SweepEngine

        engine = SweepEngine(
            registries={"V100": registry, "V100b": registry},
            overhead_dbs={"indiv": overhead_db},
        )
        plans = {"x2": build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 2)}
        result = engine.run_multi_gpu(
            plans,
            collective_model_for,
            fleets={"mixed": ("V100", "V100b")},
            overlap_policies=("none",),
        )
        assert len(result) == 1
        assert result.records[0].point.fleet == "mixed"
        with pytest.raises(ValueError, match="unknown registry"):
            engine.run_multi_gpu(
                plans, collective_model_for, fleets={"bad": ("nope", "V100")}
            )
        with pytest.raises(ValueError, match="devices"):
            engine.run_multi_gpu(
                plans,
                collective_model_for,
                fleets={"short": ("V100",)},
            )
