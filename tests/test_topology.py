"""Hierarchical topology subsystem: degeneracies, stages, scheduling.

The load-bearing contracts:

* a flat ``1 node x N GPUs`` :class:`Topology` reproduces the flat
  engine (and therefore the goldens) **bit-identically** on both the
  prediction and the simulation side;
* ``N nodes x 1 GPU`` degenerates to a flat fleet over the network
  fabric;
* empty / zero-GPU node shapes are rejected outright;
* multi-channel collective stages serialize per fabric and may overlap
  across fabrics under the event-driven policy.
"""

from __future__ import annotations

import pytest

from repro.hardware import TESLA_V100
from repro.models import MODE_INFERENCE
from repro.models.dlrm import DLRM_DEFAULT
from repro.multigpu import (
    ALL2ALL,
    ALLREDUCE,
    CHANNEL_INTER,
    CHANNEL_INTRA,
    ETHERNET_100G,
    INFINIBAND_HDR,
    NVLINK,
    PCIE_FABRIC,
    CollectiveModel,
    GroundTruthCollectives,
    GroundTruthTopologyCollectives,
    MultiGpuSimulator,
    Topology,
    TopologyCollectiveModel,
    all2all_wire_bytes,
    allreduce_wire_bytes,
    build_multi_gpu_dlrm_plan,
    collective_wire_bytes,
    hierarchical_stages,
    predict_multi_gpu,
    schedule_iteration,
)
from repro.sweep import SweepEngine


@pytest.fixture(scope="module")
def flat4_model():
    return CollectiveModel.calibrate(GroundTruthCollectives(NVLINK), 4)


@pytest.fixture(scope="module")
def topo_2x2_model():
    topology = Topology(2, 2, intra=NVLINK, inter=ETHERNET_100G)
    return TopologyCollectiveModel.calibrate(
        GroundTruthTopologyCollectives(topology)
    )


class TestTopologyShape:
    def test_degenerate_shapes_rejected(self):
        with pytest.raises(ValueError, match="num_nodes"):
            Topology(num_nodes=0, gpus_per_node=4)
        with pytest.raises(ValueError, match="gpus_per_node"):
            Topology(num_nodes=2, gpus_per_node=0)
        with pytest.raises(ValueError, match="gpus_per_node"):
            Topology(num_nodes=1, gpus_per_node=-1)

    def test_flat_constructor_and_labels(self):
        flat = Topology.flat(4, PCIE_FABRIC)
        assert flat.single_node and flat.num_devices == 4
        assert flat.intra is PCIE_FABRIC
        assert "PCIe" in flat.label
        multi = Topology(2, 4, intra=NVLINK, inter=INFINIBAND_HDR)
        assert not multi.single_node
        assert multi.num_devices == 8
        assert multi.label == "2n x 4 NVLink/IB-HDR"

    def test_node_of(self):
        topo = Topology(2, 2)
        assert [topo.node_of(d) for d in range(4)] == [0, 0, 1, 1]
        with pytest.raises(ValueError, match="outside"):
            topo.node_of(4)


class TestHierarchicalStages:
    def test_single_node_is_flat_wire(self):
        topo = Topology.flat(4, NVLINK)
        for kind in (ALL2ALL, ALLREDUCE):
            stages = hierarchical_stages(kind, 1e6, topo)
            assert stages == [
                (CHANNEL_INTRA, collective_wire_bytes(kind, 1e6, 4), 4)
            ]

    def test_one_gpu_per_node_is_flat_over_network(self):
        topo = Topology(4, 1)
        for kind in (ALL2ALL, ALLREDUCE):
            stages = hierarchical_stages(kind, 1e6, topo)
            assert stages == [
                (CHANNEL_INTER, collective_wire_bytes(kind, 1e6, 4), 4)
            ]

    def test_allreduce_decomposition(self):
        topo = Topology(2, 4)
        B = 8e6
        intra_rs, inter, intra_ag = hierarchical_stages(ALLREDUCE, B, topo)
        # Reduce-scatter + all-gather halves on the intra fabric.
        assert intra_rs == (CHANNEL_INTRA, B * 3 / 4, 4)
        assert intra_ag == (CHANNEL_INTRA, B * 3 / 4, 4)
        assert intra_rs[1] + intra_ag[1] == allreduce_wire_bytes(B, 4)
        # Cross-node ring all-reduce of the node's 1/g shard.
        assert inter == (
            CHANNEL_INTER, allreduce_wire_bytes(B / 4, 2), 2
        )

    def test_all2all_decomposition(self):
        topo = Topology(2, 4)
        B = 8e6
        intra, inter, scatter = hierarchical_stages(ALL2ALL, B, topo)
        # Same-node shards move on NVLink only.
        assert intra == (CHANNEL_INTRA, B * 3 / 8, 4)
        # The node NIC carries its four GPUs' aggregated remote halves.
        assert inter == (CHANNEL_INTER, 4 * B / 2, 2)
        assert scatter == (CHANNEL_INTRA, (B / 2) * 3 / 4, 4)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown collective kind"):
            hierarchical_stages("broadcast", 1e6, Topology(2, 4))


class TestDegenerateEquivalences:
    """1xN == flat bit-identically; Nx1 == flat over the network."""

    @pytest.mark.parametrize("overlap", ["none", "full"])
    def test_flat_topology_prediction_bit_identical(
        self, overlap, registry, overhead_db, flat4_model
    ):
        plan = build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 4, overlap=overlap)
        flat_pred = predict_multi_gpu(plan, registry, overhead_db, flat4_model)
        topo = Topology.flat(4, NVLINK)
        topo_model = TopologyCollectiveModel.calibrate(
            GroundTruthTopologyCollectives(topo)
        )
        topo_pred = predict_multi_gpu(plan, registry, overhead_db, topo_model)
        assert topo_pred.iteration_us == flat_pred.iteration_us
        assert topo_pred.collective_us == flat_pred.collective_us
        assert topo_pred.phase_us == flat_pred.phase_us
        assert topo_pred.exposed_comm_us == flat_pred.exposed_comm_us
        assert sum(topo_pred.comm_us_by_channel.values()) == (
            flat_pred.communication_us
        )

    @pytest.mark.parametrize("overlap", ["none", "full"])
    def test_flat_topology_simulation_bit_identical(self, overlap):
        plan = build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 2, overlap=overlap)
        flat = MultiGpuSimulator(TESLA_V100, NVLINK, seed=9).run(plan, 2)
        topo = MultiGpuSimulator(
            TESLA_V100, Topology.flat(2, NVLINK), seed=9
        ).run(plan, 2)
        assert topo.iteration_us == flat.iteration_us
        assert topo.collective_us == flat.collective_us
        assert topo.phase_us == flat.phase_us
        assert topo.exposed_comm_us == flat.exposed_comm_us

    def test_nx1_equals_flat_over_network_truth(self):
        """4 nodes x 1 GPU: the network is the only fabric."""
        topo_truth = GroundTruthTopologyCollectives(Topology(4, 1))
        flat_truth = GroundTruthCollectives(ETHERNET_100G)
        for kind in (ALL2ALL, ALLREDUCE):
            stages = topo_truth.stage_durations(kind, 4e6)
            assert [channel for channel, _ in stages] == [CHANNEL_INTER]
            assert stages[0][1] == flat_truth.duration_us(kind, 4e6, 4)

    def test_nx1_equals_flat_over_network_prediction(self):
        topo = Topology(4, 1, inter=ETHERNET_100G)
        topo_model = TopologyCollectiveModel.calibrate(
            GroundTruthTopologyCollectives(topo)
        )
        flat_model = CollectiveModel.calibrate(
            GroundTruthCollectives(ETHERNET_100G), 4
        )
        for kind in (ALL2ALL, ALLREDUCE):
            assert topo_model.predict_us(kind, 4e6, 4) == (
                flat_model.predict_us(kind, 4e6, 4)
            )

    def test_flat_calibration_bit_identical(self, flat4_model):
        topo_model = TopologyCollectiveModel.calibrate(
            GroundTruthTopologyCollectives(Topology.flat(4, NVLINK))
        )
        assert topo_model.inter_model is None
        assert topo_model.intra_model.measured_bw_gbs == (
            flat4_model.measured_bw_gbs
        )
        assert topo_model.intra_model.base_latency_us == (
            flat4_model.base_latency_us
        )


class TestMultiChannelScheduling:
    def test_stages_serialize_within_a_collective(self):
        schedule = schedule_iteration(
            [[100.0], [100.0]],
            [(0, 2, ((CHANNEL_INTRA, 10.0), (CHANNEL_INTER, 50.0),
                     (CHANNEL_INTRA, 10.0)))],
            overlap="full",
        )
        # Stages run back to back after the producer phase.
        assert schedule.collective_start_us == (100.0,)
        assert schedule.collective_end_us == (170.0,)
        assert schedule.channel_busy_us == {
            CHANNEL_INTRA: 20.0, CHANNEL_INTER: 50.0
        }

    def test_channels_are_independent_resources(self):
        """An intra-only and an inter-only collective fully overlap."""
        collectives = [
            (0, 2, ((CHANNEL_INTRA, 40.0),)),
            (0, 2, ((CHANNEL_INTER, 40.0),)),
        ]
        overlapped = schedule_iteration(
            [[10.0], [10.0]], collectives, overlap="full"
        )
        # Both start when phase 0 ends: neither waits for the other.
        assert overlapped.collective_start_us == (10.0, 10.0)
        same_channel = schedule_iteration(
            [[10.0], [10.0]],
            [(0, 2, ((CHANNEL_INTER, 40.0),)),
             (0, 2, ((CHANNEL_INTER, 40.0),))],
            overlap="full",
        )
        # On one fabric they must serialize instead.
        assert same_channel.collective_start_us == (10.0, 50.0)
        assert same_channel.iteration_us > overlapped.iteration_us

    def test_sync_total_includes_all_stages(self):
        schedule = schedule_iteration(
            [[100.0]],
            [(0, 1, ((CHANNEL_INTRA, 10.0), (CHANNEL_INTER, 30.0)))],
            overlap="none",
        )
        assert schedule.iteration_us == 140.0
        assert schedule.total_comm_us == 40.0

    def test_negative_stage_duration_rejected(self):
        with pytest.raises(ValueError, match="negative duration"):
            schedule_iteration(
                [[1.0]], [(0, 1, ((CHANNEL_INTRA, -1.0),))], overlap="full"
            )


class TestTopologyValidation:
    def test_multi_node_needs_inter_model(self):
        intra = CollectiveModel(measured_bw_gbs=100.0, base_latency_us=5.0)
        with pytest.raises(ValueError, match="inter-node"):
            TopologyCollectiveModel(Topology(2, 2), intra, None)

    def test_predict_us_checks_device_count(self, topo_2x2_model):
        with pytest.raises(ValueError, match="calibrated for"):
            topo_2x2_model.predict_us(ALL2ALL, 1e6, 8)

    def test_predict_topology_mismatch_rejected(
        self, registry, overhead_db, topo_2x2_model
    ):
        plan = build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 8)
        with pytest.raises(ValueError, match="devices"):
            predict_multi_gpu(plan, registry, overhead_db, topo_2x2_model)

    def test_flat_model_cannot_serve_topology(
        self, registry, overhead_db, flat4_model
    ):
        plan = build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 4)
        with pytest.raises(ValueError, match="TopologyCollectiveModel"):
            predict_multi_gpu(
                plan, registry, overhead_db, flat4_model,
                topology=Topology(2, 2),
            )

    def test_explicit_topology_must_equal_models(
        self, registry, overhead_db, topo_2x2_model
    ):
        """Same device count but a different shape is mislabeled math."""
        plan = build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 4)
        with pytest.raises(ValueError, match="calibrated topology"):
            predict_multi_gpu(
                plan, registry, overhead_db, topo_2x2_model,
                topology=Topology(4, 1),
            )

    def test_simulator_topology_mismatch_rejected(self):
        plan = build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 2)
        sim = MultiGpuSimulator(TESLA_V100, Topology(2, 2))
        with pytest.raises(ValueError, match="devices"):
            sim.run(plan, 1)


class TestHierarchicalPrediction:
    @pytest.fixture(scope="class")
    def hier_setup(self, registry, overhead_db):
        topology = Topology(2, 2, intra=NVLINK, inter=ETHERNET_100G)
        model = TopologyCollectiveModel.calibrate(
            GroundTruthTopologyCollectives(topology)
        )
        plan = build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 4, overlap="full")
        return topology, model, plan

    def test_channels_split_and_sum(self, registry, overhead_db, hier_setup):
        _, model, plan = hier_setup
        pred = predict_multi_gpu(plan, registry, overhead_db, model)
        assert set(pred.comm_us_by_channel) == {CHANNEL_INTRA, CHANNEL_INTER}
        assert sum(pred.comm_us_by_channel.values()) == pytest.approx(
            pred.communication_us
        )
        assert pred.bottleneck in ("compute", CHANNEL_INTRA, CHANNEL_INTER)

    def test_slower_network_costs_more(self, registry, overhead_db, hier_setup):
        topology, model, plan = hier_setup
        fast_topo = Topology(2, 2, intra=NVLINK, inter=INFINIBAND_HDR)
        fast = TopologyCollectiveModel.calibrate(
            GroundTruthTopologyCollectives(fast_topo)
        )
        slow_pred = predict_multi_gpu(plan, registry, overhead_db, model)
        fast_pred = predict_multi_gpu(plan, registry, overhead_db, fast)
        assert fast_pred.iteration_us < slow_pred.iteration_us

    def test_prediction_tracks_simulation(
        self, registry, overhead_db, hier_setup
    ):
        topology, model, plan = hier_setup
        pred = predict_multi_gpu(plan, registry, overhead_db, model)
        truth = MultiGpuSimulator(TESLA_V100, topology, seed=5).run(plan, 3)
        err = abs(pred.iteration_us - truth.iteration_us) / truth.iteration_us
        assert err < 0.35

    def test_sweep_topology_axis(self, registry, overhead_db):
        engine = SweepEngine(
            registries={"V100": registry},
            overhead_dbs={"db": overhead_db},
        )
        topologies = {
            "2x2": Topology(2, 2),
            "1x4": Topology.flat(4, NVLINK),
        }
        plans = {
            "b1024": build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 4),
        }
        result = engine.run_multi_gpu(
            plans,
            lambda topo: TopologyCollectiveModel.calibrate(
                GroundTruthTopologyCollectives(topo)
            ),
            topologies=topologies,
        )
        assert set(result.axis_values("topology")) == {"2x2", "1x4"}
        rows = result.to_rows()
        assert all("bottleneck" in row for row in rows)
        flat = result.filter(topology="1x4", overlap="none").records[0]
        hier = result.filter(topology="2x2", overlap="none").records[0]
        # Crossing nodes on Ethernet is never cheaper than NVLink-only.
        assert hier.prediction.iteration_us > flat.prediction.iteration_us

    def test_sweep_rejects_unmatched_topology(self, registry, overhead_db):
        engine = SweepEngine(
            registries={"V100": registry},
            overhead_dbs={"db": overhead_db},
        )
        plans = {"b1024": build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 4)}
        with pytest.raises(ValueError, match="no plan matches"):
            engine.run_multi_gpu(
                plans,
                lambda topo: None,
                topologies={"2x4": Topology(2, 4)},
            )

    def test_sweep_rejects_unmatched_plan(self, registry, overhead_db):
        """A plan matching no topology must error, not vanish."""
        engine = SweepEngine(
            registries={"V100": registry},
            overhead_dbs={"db": overhead_db},
        )
        plans = {
            "x4": build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 4),
            "x8": build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 8),
        }
        with pytest.raises(ValueError, match="no topology matches"):
            engine.run_multi_gpu(
                plans,
                lambda topo: None,
                topologies={"2x2": Topology(2, 2)},
            )
