"""Round-trip tests for performance-model registry persistence."""

import pytest

from repro.ops import KernelCall, KernelType, gemm_kernel
from repro.perfmodels.persistence import (
    load_registry,
    registry_from_dict,
    registry_to_dict,
    save_registry,
)


@pytest.fixture(scope="module")
def built(built_models):
    """Reuse the session's one grid-search build (registry, report)."""
    return built_models


class TestRoundTrip:
    def test_dict_roundtrip_predictions_identical(self, device, built):
        registry, report = built
        data = registry_to_dict(registry, device.gpu, report.peaks)
        restored, peaks = registry_from_dict(data)
        kernels = [
            gemm_kernel(512, 256, 128),
            gemm_kernel(64, 64, 64, batch=256),
            KernelCall(KernelType.TRANSPOSE,
                       {"b": 512, "m": 9, "n": 64, "elem_size": 4.0}),
            KernelCall(KernelType.TRIL_FWD, {"B": 1024, "F": 9}),
            KernelCall(KernelType.CONCAT,
                       {"bytes_total": 2e6, "num_inputs": 2}),
            KernelCall(KernelType.MEMCPY, {"bytes": 1e7, "h2d": 1}),
            KernelCall(KernelType.EMBEDDING_FWD,
                       {"B": 512, "E": 100_000, "T": 4, "L": 10, "D": 64,
                        "rows_per_block": 32}),
            KernelCall(KernelType.ELEMENTWISE,
                       {"flop": 1e6, "bytes_read": 4e6, "bytes_write": 4e6}),
        ]
        for kernel in kernels:
            assert restored.predict_us(kernel) == pytest.approx(
                registry.predict_us(kernel), rel=1e-12
            )

    def test_file_roundtrip(self, device, built, tmp_path):
        registry, report = built
        path = str(tmp_path / "registry.json")
        save_registry(registry, device.gpu, report.peaks, path)
        restored, peaks = load_registry(path)
        assert peaks.dram_bw_gbs == pytest.approx(report.peaks.dram_bw_gbs)
        assert set(restored.kernel_types) == set(registry.kernel_types)

    def test_version_check(self, device, built):
        registry, report = built
        data = registry_to_dict(registry, device.gpu, report.peaks)
        data["version"] = 42
        with pytest.raises(ValueError, match="format"):
            registry_from_dict(data)

    def test_loaded_registry_usable_for_e2e(self, device, built, overhead_db,
                                            dlrm_graph, tmp_path):
        from repro.e2e import predict_e2e

        registry, report = built
        path = str(tmp_path / "registry.json")
        save_registry(registry, device.gpu, report.peaks, path)
        restored, _ = load_registry(path)
        a = predict_e2e(dlrm_graph, registry, overhead_db)
        b = predict_e2e(dlrm_graph, restored, overhead_db)
        assert b.total_us == pytest.approx(a.total_us, rel=1e-9)
