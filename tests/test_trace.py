"""Unit tests for trace events, event tree and breakdown analysis."""

import pytest

from repro.models import build_model
from repro.trace import (
    EventCategory,
    Trace,
    TraceEvent,
    build_event_tree,
    dominating_ops,
    gpu_utilization,
    iteration_breakdown,
    top_level_ops,
    trace_breakdown,
)


class TestTraceEvents:
    def test_end_property(self):
        e = TraceEvent("k", "kernel", 10.0, 5.0, 0, 0, "op")
        assert e.end == 15.0

    def test_json_roundtrip(self, profiled_run):
        trace = profiled_run.trace
        restored = Trace.from_json(trace.to_json())
        assert len(restored.events) == len(trace.events)
        assert restored.gpu_name == trace.gpu_name
        assert restored.events[0] == trace.events[0]

    def test_corrected_duration_subtracts_overhead(self, profiled_run):
        trace = profiled_run.trace
        kernel = next(e for e in trace.events if e.cat == EventCategory.KERNEL)
        assert trace.corrected_duration(kernel) == pytest.approx(
            kernel.dur - trace.gpu_profiler_overhead_us
        )

    def test_iteration_filter(self, profiled_run):
        events = profiled_run.trace.iteration_events(0)
        assert events
        assert all(e.iteration == 0 for e in events)


class TestEventTree:
    def test_roots_are_ops(self, profiled_run):
        roots = top_level_ops(profiled_run.trace, iteration=0)
        assert roots
        assert all(r.event.cat == EventCategory.OP for r in roots)

    def test_runtime_events_nested(self, profiled_run):
        roots = build_event_tree(profiled_run.trace, iteration=0)
        runtimes = [
            c for r in roots for c in r.children
            if c.event.cat == EventCategory.RUNTIME
        ]
        assert runtimes, "runtime events must nest under op events"

    def test_kernels_attached_by_correlation(self, profiled_run):
        roots = top_level_ops(profiled_run.trace, iteration=0)
        attached = sum(len(list(n.kernels)) for r in roots for n in r.walk())
        total = sum(
            1 for e in profiled_run.trace.events
            if e.cat == EventCategory.KERNEL and e.iteration == 0
        )
        assert attached == total

    def test_device_time_positive_for_kernel_ops(self, profiled_run):
        roots = top_level_ops(profiled_run.trace, iteration=0)
        linear = next(r for r in roots if r.event.op_name == "aten::linear")
        assert linear.device_time() > 0

    def test_one_root_per_graph_op(self, profiled_run, dlrm_graph):
        roots = top_level_ops(profiled_run.trace, iteration=0)
        assert len(roots) == len(dlrm_graph)


class TestBreakdown:
    def test_iteration_breakdown_fields(self, profiled_run):
        part = iteration_breakdown(profiled_run.trace, 0)
        assert part.e2e_us > part.active_us > 0
        assert part.idle_us >= 0
        assert 0 < part.gpu_utilization <= 1

    def test_unknown_iteration_rejected(self, profiled_run):
        with pytest.raises(ValueError):
            iteration_breakdown(profiled_run.trace, 999)

    def test_trace_breakdown_consistency(self, profiled_run):
        bd = trace_breakdown(profiled_run.trace)
        assert bd.mean_e2e_us >= bd.mean_active_us
        assert bd.mean_idle_us == pytest.approx(
            bd.mean_e2e_us - bd.mean_active_us
        )

    def test_breakdown_close_to_engine_truth(self, device, dlrm_graph, profiled_run):
        """Trace-derived timings should track the engine's own stats."""
        bd = trace_breakdown(profiled_run.trace)
        assert bd.mean_active_us == pytest.approx(
            profiled_run.mean_gpu_active_us, rel=0.05
        )

    def test_shares_sum_to_one(self, profiled_run):
        shares = trace_breakdown(profiled_run.trace).device_time_shares()
        assert sum(shares.values()) == pytest.approx(1.0, abs=0.02)
        assert "Idle" in shares

    def test_dominating_ops_sorted(self, profiled_run):
        ranked = dominating_ops(profiled_run.trace, top_k=5)
        values = [v for _, v in ranked]
        assert values == sorted(values, reverse=True)
        assert len(ranked) == 5

    def test_gpu_utilization_convenience(self, profiled_run):
        assert 0 < gpu_utilization(profiled_run.trace) <= 1

    def test_dlrm_has_meaningful_idle(self, device):
        """The Figure 1 premise: DLRM shows device idle time."""
        g = build_model("DLRM_default", 512)
        trace = device.run(
            g, iterations=3, batch_size=512, with_profiler=True, warmup=1
        ).trace
        bd = trace_breakdown(trace)
        assert bd.mean_idle_us > 0.05 * bd.mean_e2e_us
