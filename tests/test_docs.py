"""Documentation integrity: Markdown links resolve, every ``src/repro``
package is 100% docstring-covered, and the examples gallery names every
``examples/*.py`` script.  Runs the same checks as CI's docs job."""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from tools.check_docs import (  # noqa: E402
    check_docstrings,
    check_examples_gallery,
    check_markdown_links,
    iter_markdown_links,
)


class TestMarkdownLinks:
    def test_repo_markdown_links_resolve(self):
        assert check_markdown_links() == []

    def test_broken_links_are_reported(self, tmp_path):
        (tmp_path / "doc.md").write_text("see [x](missing.md)")
        errors = check_markdown_links(files=("doc.md",), root=tmp_path)
        assert errors == ["doc.md: broken link -> missing.md"]

    def test_code_fences_and_external_links_skipped(self, tmp_path):
        (tmp_path / "doc.md").write_text(
            "[ok](https://example.com) [anchor](#x)\n"
            "```\n[not a link](nope.md)\n```\n"
        )
        assert check_markdown_links(files=("doc.md",), root=tmp_path) == []

    def test_link_extraction(self):
        text = "a [one](a.md) b [two](b/c.md#frag)"
        assert list(iter_markdown_links(text)) == ["a.md", "b/c.md#frag"]


class TestDocstringCoverage:
    def test_all_packages_fully_documented(self):
        assert check_docstrings() == []

    def test_missing_docstrings_are_reported(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text(
            '"""Module."""\n\ndef public():\n    pass\n\ndef _private():\n'
            "    pass\n"
        )
        errors = check_docstrings(packages=("pkg",), root=tmp_path)
        assert errors == ["pkg/mod.py: public"]


class TestExamplesGallery:
    def test_repo_gallery_covers_every_example(self):
        assert check_examples_gallery() == []

    def test_missing_example_section_is_reported(self, tmp_path):
        examples = tmp_path / "examples"
        examples.mkdir()
        (examples / "covered.py").write_text("pass\n")
        (examples / "missing.py").write_text("pass\n")
        (tmp_path / "GALLERY.md").write_text(
            "# Gallery\n\n## covered.py\n\ntext mentioning missing.py\n"
        )
        errors = check_examples_gallery(
            gallery="GALLERY.md", examples_dir="examples", root=tmp_path
        )
        assert errors == ["GALLERY.md: no section for examples/missing.py"]

    def test_substring_headings_do_not_count(self, tmp_path):
        """'scaling.py' must not be covered by '## multinode_scaling.py'."""
        examples = tmp_path / "examples"
        examples.mkdir()
        (examples / "scaling.py").write_text("pass\n")
        (examples / "multinode_scaling.py").write_text("pass\n")
        (tmp_path / "GALLERY.md").write_text(
            "# Gallery\n\n## multinode_scaling.py\n\ntext\n"
        )
        errors = check_examples_gallery(
            gallery="GALLERY.md", examples_dir="examples", root=tmp_path
        )
        assert errors == ["GALLERY.md: no section for examples/scaling.py"]

    def test_code_fence_comments_do_not_count_as_sections(self, tmp_path):
        examples = tmp_path / "examples"
        examples.mkdir()
        (examples / "foo.py").write_text("pass\n")
        (tmp_path / "GALLERY.md").write_text(
            "# Gallery\n\n```bash\n# python examples/foo.py\n```\n"
        )
        errors = check_examples_gallery(
            gallery="GALLERY.md", examples_dir="examples", root=tmp_path
        )
        assert errors == ["GALLERY.md: no section for examples/foo.py"]

    def test_missing_gallery_file_is_reported(self, tmp_path):
        (tmp_path / "examples").mkdir()
        errors = check_examples_gallery(
            gallery="GALLERY.md", examples_dir="examples", root=tmp_path
        )
        assert errors == ["GALLERY.md: file missing"]
