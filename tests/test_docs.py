"""Documentation integrity: Markdown links resolve, capacity is 100%
docstring-covered.  Runs the same checks as CI's docs job."""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from tools.check_docs import (  # noqa: E402
    check_docstrings,
    check_markdown_links,
    iter_markdown_links,
)


class TestMarkdownLinks:
    def test_repo_markdown_links_resolve(self):
        assert check_markdown_links() == []

    def test_broken_links_are_reported(self, tmp_path):
        (tmp_path / "doc.md").write_text("see [x](missing.md)")
        errors = check_markdown_links(files=("doc.md",), root=tmp_path)
        assert errors == ["doc.md: broken link -> missing.md"]

    def test_code_fences_and_external_links_skipped(self, tmp_path):
        (tmp_path / "doc.md").write_text(
            "[ok](https://example.com) [anchor](#x)\n"
            "```\n[not a link](nope.md)\n```\n"
        )
        assert check_markdown_links(files=("doc.md",), root=tmp_path) == []

    def test_link_extraction(self):
        text = "a [one](a.md) b [two](b/c.md#frag)"
        assert list(iter_markdown_links(text)) == ["a.md", "b/c.md#frag"]


class TestDocstringCoverage:
    def test_capacity_package_fully_documented(self):
        assert check_docstrings() == []

    def test_missing_docstrings_are_reported(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text(
            '"""Module."""\n\ndef public():\n    pass\n\ndef _private():\n'
            "    pass\n"
        )
        errors = check_docstrings(packages=("pkg",), root=tmp_path)
        assert errors == ["pkg/mod.py: public"]
