"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import graph_from_dict, graph_to_dict
from repro.hardware import TESLA_V100
from repro.models.dlrm import DlrmConfig, build_dlrm_graph
from repro.ops import KernelCall, KernelType, gemm_kernel
from repro.overheads import remove_outliers
from repro.simulator import GroundTruthLatency

_LAT = GroundTruthLatency(TESLA_V100)

dlrm_configs = st.builds(
    DlrmConfig,
    name=st.just("prop"),
    bot_mlp=st.tuples(
        st.sampled_from([13, 64, 256]),
        st.sampled_from([64, 128]),
    ).map(lambda t: (t[0], t[1], 64)),
    num_tables=st.integers(min_value=1, max_value=12),
    rows_per_table=st.integers(min_value=100, max_value=1_000_000),
    embedding_dim=st.just(64),
    top_mlp=st.sampled_from([(64, 1), (256, 64, 1), (1024, 256, 1)]),
    lookups_per_table=st.integers(min_value=1, max_value=64),
    loss=st.sampled_from(["mse", "bce"]),
)


class TestGraphInvariants:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(config=dlrm_configs, batch=st.sampled_from([32, 128, 1024]))
    def test_any_dlrm_config_builds_valid_graph(self, config, batch):
        graph = build_dlrm_graph(config, batch)
        graph.validate()
        # Forward + backward + optimizer always yields both directions.
        names = {n.op_name for n in graph}
        assert "LookupFunction" in names
        assert "LookupFunctionBackward" in names
        assert "Optimizer.step" in names

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(config=dlrm_configs)
    def test_serialization_roundtrip_exact(self, config):
        graph = build_dlrm_graph(config, 64)
        restored = graph_from_dict(graph_to_dict(graph))
        assert [n.op_name for n in restored] == [n.op_name for n in graph]
        assert restored.num_kernels() == graph.num_kernels()
        assert restored.tensors == graph.tensors

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(config=dlrm_configs,
           batches=st.tuples(st.sampled_from([64, 256]), st.sampled_from([512, 2048])))
    def test_resize_equals_rebuild(self, config, batches):
        """rescale_batch must produce exactly the rebuilt graph's kernels."""
        from repro.graph.transforms import rescale_batch

        b0, b1 = batches
        resized = rescale_batch(build_dlrm_graph(config, b0), b0, b1)
        rebuilt = build_dlrm_graph(config, b1)
        k_resized = [dict(k.params) for n in resized for k in n.op.kernel_calls()]
        k_rebuilt = [dict(k.params) for n in rebuilt for k in n.op.kernel_calls()]
        assert k_resized == k_rebuilt


class TestLatencyInvariants:
    @settings(max_examples=60, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=8192),
        n=st.integers(min_value=1, max_value=4096),
        k=st.integers(min_value=1, max_value=4096),
        batch=st.integers(min_value=1, max_value=512),
    )
    def test_gemm_time_positive_and_finite(self, m, n, k, batch):
        t = _LAT.duration_us(gemm_kernel(m, n, k, batch))
        assert np.isfinite(t)
        assert t > 0

    @settings(max_examples=40, deadline=None)
    @given(
        m=st.integers(min_value=16, max_value=2048),
        n=st.integers(min_value=16, max_value=2048),
        k=st.integers(min_value=16, max_value=2048),
    )
    def test_gemm_monotone_in_every_dim(self, m, n, k):
        base = _LAT.duration_us(gemm_kernel(m, n, k))
        assert _LAT.duration_us(gemm_kernel(2 * m, n, k)) >= base * 0.999
        assert _LAT.duration_us(gemm_kernel(m, 2 * n, k)) >= base * 0.999
        assert _LAT.duration_us(gemm_kernel(m, n, 2 * k)) >= base * 0.999

    @settings(max_examples=40, deadline=None)
    @given(
        B=st.integers(min_value=32, max_value=8192),
        E=st.integers(min_value=100, max_value=10_000_000),
        T=st.integers(min_value=1, max_value=32),
        L=st.integers(min_value=1, max_value=128),
        D=st.sampled_from([32, 64, 128, 256]),
    )
    def test_embedding_fwd_leq_bwd(self, B, E, T, L, D):
        params = {"B": B, "E": E, "T": T, "L": L, "D": D, "rows_per_block": 32}
        fwd = _LAT.duration_us(KernelCall(KernelType.EMBEDDING_FWD, params))
        bwd = _LAT.duration_us(KernelCall(KernelType.EMBEDDING_BWD, params))
        assert fwd <= bwd * 1.001

    @settings(max_examples=40, deadline=None)
    @given(bytes_total=st.floats(min_value=64, max_value=1e9),
           num_inputs=st.integers(min_value=1, max_value=64))
    def test_concat_monotone_in_bytes(self, bytes_total, num_inputs):
        small = _LAT.duration_us(
            KernelCall(KernelType.CONCAT,
                       {"bytes_total": bytes_total, "num_inputs": num_inputs})
        )
        large = _LAT.duration_us(
            KernelCall(KernelType.CONCAT,
                       {"bytes_total": 2 * bytes_total, "num_inputs": num_inputs})
        )
        assert large >= small


class TestOutlierInvariants:
    @given(st.lists(st.floats(min_value=0.1, max_value=1e4), min_size=1, max_size=200))
    def test_filter_never_empties(self, samples):
        kept = remove_outliers(samples)
        assert kept
        assert set(kept) <= set(samples)

    @given(st.lists(st.floats(min_value=0.1, max_value=1e4), min_size=4, max_size=200))
    def test_filter_tightens_range(self, samples):
        kept = remove_outliers(samples)
        assert min(kept) >= min(samples)
        assert max(kept) <= max(samples)


class TestMetricsInvariants:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=1e5),
                st.floats(min_value=0.01, max_value=3.0),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_gmae_scale_invariant(self, pairs):
        """GMAE depends only on error ratios, not absolute scale."""
        from repro.metrics import gmae

        actual = [a for a, _ in pairs]
        predicted = [a * r for a, r in pairs]
        g1 = gmae(predicted, actual)
        g2 = gmae([p * 1000 for p in predicted], [a * 1000 for a in actual])
        assert g1 == pytest.approx(g2, rel=1e-6)


import pytest  # noqa: E402  (used by approx above)
