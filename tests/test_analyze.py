"""The ``repro lint`` analyzer: every rule's trigger and near-miss
fixtures, suppression directives, the baseline workflow, and the
repo-wide invariant that ``src/`` lints clean against the committed
baseline (which may hold warnings only — never errors)."""

from __future__ import annotations

from pathlib import Path

from repro.analyze import (
    SEVERITY_WARNING,
    Finding,
    ParsedFile,
    ProjectContext,
    default_registry,
    diff_against_baseline,
    load_baseline,
    render_json,
    run_lint,
    save_baseline,
)
from repro.analyze.rules.contract import (
    ContractDispatch,
    ContractKernelModel,
    ContractRoundtrip,
)
from repro.analyze.rules.determinism import (
    DetHash,
    DetRandom,
    DetSetOrder,
    DetTime,
)
from repro.analyze.rules.literals import MagicLiteral
from repro.analyze.rules.units import (
    UnitMixedArithmetic,
    UnitReturnMismatch,
    UnitReturnUnsuffixed,
    identifier_unit,
)
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "lint_baseline.json"


def lint_source(tmp_path, source, rule_cls, name="mod.py"):
    """Run one file-scope rule over fixture source."""
    path = tmp_path / name
    path.write_text(source)
    parsed = ParsedFile(path, name)
    assert parsed.tree is not None, parsed.error
    context = ProjectContext(None, {name: parsed})
    return list(rule_cls().check_file(parsed, context))


class TestIdentifierUnit:
    def test_suffix_and_leading_token(self):
        assert identifier_unit("total_us") == "us"
        assert identifier_unit("bytes_read") == "bytes"
        assert identifier_unit("wire_gbs") == "gbs"

    def test_rates_are_not_base_units(self):
        assert identifier_unit("lam_per_us") is None
        assert identifier_unit("samples_per_second") is None
        assert identifier_unit("cost_per_hour") is None

    def test_single_token_names_are_untyped(self):
        assert identifier_unit("us") is None
        assert identifier_unit("total") is None


class TestUnitMixedArithmetic:
    def test_addition_conflict(self, tmp_path):
        found = lint_source(
            tmp_path, "def f(a_us, b_ms):\n    return a_us + b_ms\n",
            UnitMixedArithmetic,
        )
        assert len(found) == 1
        assert "us" in found[0].message and "ms" in found[0].message

    def test_same_unit_and_dimensionless_are_clean(self, tmp_path):
        clean = (
            "def f(a_us, b_us, n):\n"
            "    return a_us + b_us + 5 + a_us * n\n"
        )
        assert lint_source(tmp_path, clean, UnitMixedArithmetic) == []

    def test_multiplication_is_conservative(self, tmp_path):
        # us * ms is a new (unknown) dimension, not a conflict.
        src = "def f(a_us, b_ms):\n    return a_us * b_ms\n"
        assert lint_source(tmp_path, src, UnitMixedArithmetic) == []

    def test_comparison_conflict(self, tmp_path):
        src = "def f(a_us, b_ms):\n    return a_us < b_ms\n"
        assert len(lint_source(tmp_path, src, UnitMixedArithmetic)) == 1

    def test_min_max_argument_conflict(self, tmp_path):
        src = "def f(a_us, b_ms):\n    return max(a_us, b_ms)\n"
        assert len(lint_source(tmp_path, src, UnitMixedArithmetic)) == 1

    def test_keyword_argument_conflict(self, tmp_path):
        src = "def f(g, x_ms):\n    g(total_us=x_ms)\n"
        assert len(lint_source(tmp_path, src, UnitMixedArithmetic)) == 1

    def test_assignment_conflict(self, tmp_path):
        src = "def f(x_gib):\n    y_bytes = x_gib\n    return y_bytes\n"
        assert len(lint_source(tmp_path, src, UnitMixedArithmetic)) == 1

    def test_rate_division_is_clean(self, tmp_path):
        # The slo.py pattern: arrivals-per-us derived from a QPS rate.
        src = "def f(replica_qps):\n    lam_per_us = replica_qps / 1e6\n"
        assert lint_source(tmp_path, src, UnitMixedArithmetic) == []

    def test_nested_conflict_reported_once(self, tmp_path):
        src = "def f(a_us, b_ms):\n    return max(a_us + b_ms, 0.0)\n"
        assert len(lint_source(tmp_path, src, UnitMixedArithmetic)) == 1


class TestUnitReturnRules:
    def test_return_mismatch(self, tmp_path):
        src = "def total_us(a_ms):\n    return a_ms\n"
        found = lint_source(tmp_path, src, UnitReturnMismatch)
        assert len(found) == 1
        assert found[0].severity == "error"

    def test_matching_return_is_clean(self, tmp_path):
        src = "def total_us(a_us, b_us):\n    return a_us + b_us\n"
        assert lint_source(tmp_path, src, UnitReturnMismatch) == []

    def test_nested_function_returns_ignored(self, tmp_path):
        src = (
            "def total_us(a_us):\n"
            "    def helper(b_ms):\n"
            "        return b_ms\n"
            "    return a_us\n"
        )
        assert lint_source(tmp_path, src, UnitReturnMismatch) == []

    def test_unsuffixed_return_warns(self, tmp_path):
        src = "def total_us(vals):\n    total = sum(vals)\n    return total\n"
        found = lint_source(tmp_path, src, UnitReturnUnsuffixed)
        assert len(found) == 1
        assert found[0].severity == SEVERITY_WARNING

    def test_suffixed_return_is_clean(self, tmp_path):
        src = "def total_us(a_us):\n    return a_us\n"
        assert lint_source(tmp_path, src, UnitReturnUnsuffixed) == []


class TestDeterminismRules:
    def test_hash_builtin_flagged(self, tmp_path):
        assert len(lint_source(tmp_path, "x = hash('V100')\n", DetHash)) == 1

    def test_method_named_hash_is_clean(self, tmp_path):
        assert lint_source(tmp_path, "x = obj.hash()\n", DetHash) == []

    def test_wall_clock_flagged_perf_counter_clean(self, tmp_path):
        src = "import time\nt = time.time()\np = time.perf_counter()\n"
        found = lint_source(tmp_path, src, DetTime)
        assert len(found) == 1
        assert "time.time" in found[0].message

    def test_datetime_now_flagged(self, tmp_path):
        src = "import datetime\nd = datetime.datetime.now()\n"
        assert len(lint_source(tmp_path, src, DetTime)) == 1

    def test_global_random_flagged(self, tmp_path):
        src = "import random\nx = random.random()\n"
        assert len(lint_source(tmp_path, src, DetRandom)) == 1

    def test_seeded_generator_is_clean(self, tmp_path):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "x = rng.random()\n"
        )
        assert lint_source(tmp_path, src, DetRandom) == []

    def test_legacy_numpy_global_flagged(self, tmp_path):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert len(lint_source(tmp_path, src, DetRandom)) == 1

    def test_unseeded_default_rng_flagged(self, tmp_path):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert len(lint_source(tmp_path, src, DetRandom)) == 1

    def test_set_iteration_flagged(self, tmp_path):
        src = "for x in {1, 2, 3}:\n    print(x)\n"
        assert len(lint_source(tmp_path, src, DetSetOrder)) == 1

    def test_sorted_set_is_clean(self, tmp_path):
        src = "for x in sorted({1, 2, 3}):\n    print(x)\n"
        assert lint_source(tmp_path, src, DetSetOrder) == []

    def test_materializing_set_flagged(self, tmp_path):
        src = "xs = list({1, 2})\ns = ','.join(set('ab'))\n"
        assert len(lint_source(tmp_path, src, DetSetOrder)) == 2

    def test_set_comprehension_source_flagged(self, tmp_path):
        src = "ys = [x for x in {1, 2}]\n"
        assert len(lint_source(tmp_path, src, DetSetOrder)) == 1


class TestSuppression:
    def test_inline_disable(self, tmp_path):
        src = "x = hash('k')  # repro-lint: disable=det-hash\n"
        path = tmp_path / "s.py"
        path.write_text(src)
        run = run_lint([path], default_registry(), rules=["det-hash"],
                       root=tmp_path)
        assert run.findings == ()

    def test_inline_disable_other_rule_does_not_apply(self, tmp_path):
        src = "x = hash('k')  # repro-lint: disable=det-time\n"
        path = tmp_path / "s.py"
        path.write_text(src)
        run = run_lint([path], default_registry(), rules=["det-hash"],
                       root=tmp_path)
        assert len(run.findings) == 1

    def test_disable_file(self, tmp_path):
        src = (
            "# repro-lint: disable-file=det-hash\n"
            "x = hash('k')\ny = hash('j')\n"
        )
        path = tmp_path / "s.py"
        path.write_text(src)
        run = run_lint([path], default_registry(), rules=["det-hash"],
                       root=tmp_path)
        assert run.findings == ()

    def test_disable_all(self, tmp_path):
        src = "x = hash('k')  # repro-lint: disable=all\n"
        path = tmp_path / "s.py"
        path.write_text(src)
        run = run_lint([path], default_registry(), rules=["det-hash"],
                       root=tmp_path)
        assert run.findings == ()


def _write(root: Path, rel: str, text: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)


def _fake_repo(tmp_path, simulate_mentions: str) -> ProjectContext:
    """A minimal repo with both registries and two handler modules."""
    _write(tmp_path, "src/repro/multigpu/schedule.py",
           'OVERLAP_NONE = "none"\n'
           'OVERLAP_FULL = "full"\n'
           "OVERLAP_POLICIES = (OVERLAP_NONE, OVERLAP_FULL)\n")
    _write(tmp_path, "src/repro/multigpu/interconnect.py",
           'ALL2ALL = "all2all"\n'
           'ALLREDUCE = "allreduce"\n'
           "COLLECTIVE_KINDS = (ALL2ALL, ALLREDUCE)\n")
    _write(tmp_path, "src/repro/multigpu/predict.py",
           "from repro.multigpu.interconnect import ALL2ALL, ALLREDUCE\n"
           "from repro.multigpu.schedule import OVERLAP_POLICIES\n"
           "def check(overlap, kind):\n"
           "    if overlap not in OVERLAP_POLICIES:\n"
           "        raise ValueError(overlap)\n"
           "    return kind in (ALL2ALL, ALLREDUCE)\n")
    _write(tmp_path, "src/repro/multigpu/simulate.py", simulate_mentions)
    return ProjectContext(tmp_path, {})


class TestContractDispatch:
    FULL_COVERAGE = (
        "def run(overlap, kind):\n"
        '    if overlap == "none" or overlap == "full":\n'
        '        return kind in ("all2all", "allreduce")\n'
    )

    def test_full_coverage_is_clean(self, tmp_path):
        context = _fake_repo(tmp_path, self.FULL_COVERAGE)
        assert list(ContractDispatch().check_project(context)) == []

    def test_unhandled_member_is_reported(self, tmp_path):
        partial = (
            "def run(overlap, kind):\n"
            '    if overlap == "none":\n'
            '        return kind in ("all2all", "allreduce")\n'
        )
        context = _fake_repo(tmp_path, partial)
        found = list(ContractDispatch().check_project(context))
        assert len(found) == 1
        assert "'full'" in found[0].message
        assert found[0].path == "src/repro/multigpu/simulate.py"

    def test_coverage_through_imports(self, tmp_path):
        # simulate.py handles nothing itself but imports a helper that
        # handles everything.
        context = _fake_repo(
            tmp_path,
            "from repro.multigpu.engine import run_all\n"
            "def run(overlap, kind):\n"
            "    return run_all(overlap, kind)\n",
        )
        _write(tmp_path, "src/repro/multigpu/engine.py", self.FULL_COVERAGE)
        context = ProjectContext(tmp_path, {})
        assert list(ContractDispatch().check_project(context)) == []

    def test_defining_module_alone_is_not_coverage(self, tmp_path):
        # Mentions inside the registry's own defining assignments must
        # not count as handling.
        context = _fake_repo(
            tmp_path,
            "from repro.multigpu.schedule import OVERLAP_POLICIES\n"
            "from repro.multigpu.interconnect import COLLECTIVE_KINDS\n",
        )
        found = list(ContractDispatch().check_project(context))
        # simulate.py imports both registry modules yet handles no
        # member directly: only membership tests or member mentions
        # count, so every member is reported.
        assert len(found) == 4


def _fake_serving_repo(tmp_path, report_source: str) -> ProjectContext:
    """A minimal repo with just the ARRIVAL_KINDS contract's two sides."""
    _write(tmp_path, "src/repro/serving/arrivals.py",
           'ARRIVAL_POISSON = "poisson"\n'
           'ARRIVAL_REPLAY = "replay"\n'
           "ARRIVAL_KINDS = (ARRIVAL_POISSON, ARRIVAL_REPLAY)\n"
           "def generate(spec):\n"
           "    if spec.kind not in ARRIVAL_KINDS:\n"
           "        raise ValueError(spec.kind)\n")
    _write(tmp_path, "src/repro/serving/report.py", report_source)
    return ProjectContext(tmp_path, {})


class TestContractDispatchArrivalKinds:
    def test_full_coverage_is_clean(self, tmp_path):
        context = _fake_serving_repo(
            tmp_path,
            'DESCRIPTIONS = {"poisson": "steady", "replay": "recorded"}\n',
        )
        assert list(ContractDispatch().check_project(context)) == []

    def test_renderer_missing_a_kind_is_reported(self, tmp_path):
        context = _fake_serving_repo(
            tmp_path,
            'DESCRIPTIONS = {"poisson": "steady"}\n',
        )
        found = list(ContractDispatch().check_project(context))
        assert len(found) == 1
        assert "'replay'" in found[0].message
        assert found[0].path == "src/repro/serving/report.py"

    def test_absent_subsystem_is_skipped(self, tmp_path):
        # A project without serving/arrivals.py at all (e.g. the fake
        # multigpu-only repos above) must not trip the serving contract.
        context = _fake_repo(tmp_path, TestContractDispatch.FULL_COVERAGE)
        assert list(ContractDispatch().check_project(context)) == []

    def test_present_file_without_registry_is_an_error(self, tmp_path):
        _write(tmp_path, "src/repro/serving/arrivals.py",
               'ARRIVAL_POISSON = "poisson"\n')
        _write(tmp_path, "src/repro/serving/report.py", "\n")
        context = ProjectContext(tmp_path, {})
        found = list(ContractDispatch().check_project(context))
        assert len(found) == 1
        assert "ARRIVAL_KINDS" in found[0].message

    def test_missing_handler_module_is_reported(self, tmp_path):
        _write(tmp_path, "src/repro/serving/arrivals.py",
               'ARRIVAL_POISSON = "poisson"\n'
               "ARRIVAL_KINDS = (ARRIVAL_POISSON,)\n"
               "def generate(spec):\n"
               "    return spec.kind in ARRIVAL_KINDS\n")
        context = ProjectContext(tmp_path, {})
        found = list(ContractDispatch().check_project(context))
        assert len(found) == 1
        assert found[0].path == "src/repro/serving/report.py"
        assert "handler module missing" in found[0].message


class TestContractKernelModel:
    def test_unmodeled_kernel_type_is_reported(self, tmp_path):
        _write(tmp_path, "src/repro/ops/base.py",
               "class KernelType:\n"
               '    GEMM = "gemm"\n'
               '    CONV = "conv"\n')
        _write(tmp_path, "src/repro/perfmodels/models.py",
               "from repro.ops.base import KernelType\n"
               "MODELED = {KernelType.GEMM: object()}\n")
        context = ProjectContext(tmp_path, {})
        found = list(ContractKernelModel().check_project(context))
        assert len(found) == 1
        assert "KernelType.CONV" in found[0].message

    def test_fully_modeled_is_clean(self, tmp_path):
        _write(tmp_path, "src/repro/ops/base.py",
               "class KernelType:\n"
               '    GEMM = "gemm"\n')
        _write(tmp_path, "src/repro/perfmodels/models.py",
               "from repro.ops.base import KernelType\n"
               "MODELED = {KernelType.GEMM: object()}\n")
        context = ProjectContext(tmp_path, {})
        assert list(ContractKernelModel().check_project(context)) == []


ROUNDTRIP_OK = """
from dataclasses import dataclass

@dataclass
class Row:
    '''A row.'''
    mean: float
    count: int

    def to_dict(self):
        '''Serialize.'''
        return {"mean": self.mean, "count": self.count}

    @classmethod
    def from_dict(cls, data):
        '''Deserialize.'''
        return cls(mean=data["mean"], count=data["count"])
"""


class TestContractRoundtrip:
    def test_matching_pair_is_clean(self, tmp_path):
        assert lint_source(tmp_path, ROUNDTRIP_OK, ContractRoundtrip) == []

    def test_missing_from_dict_is_reported(self, tmp_path):
        src = ROUNDTRIP_OK.split("    @classmethod")[0]
        found = lint_source(tmp_path, src, ContractRoundtrip)
        assert len(found) == 1
        assert "no from_dict" in found[0].message

    def test_unknown_consumed_key_is_reported(self, tmp_path):
        src = ROUNDTRIP_OK.replace('data["count"]', 'data["total"]')
        found = lint_source(tmp_path, src, ContractRoundtrip)
        assert any("'total'" in f.message for f in found)

    def test_unrestored_field_is_reported(self, tmp_path):
        src = ROUNDTRIP_OK.replace(
            'return cls(mean=data["mean"], count=data["count"])',
            'return cls(mean=data["mean"], count=0)',
        )
        found = lint_source(tmp_path, src, ContractRoundtrip)
        assert len(found) == 1
        assert "'count'" in found[0].message

    def test_plain_class_is_ignored(self, tmp_path):
        src = (
            "class Row:\n"
            "    def to_dict(self):\n"
            "        return {}\n"
        )
        assert lint_source(tmp_path, src, ContractRoundtrip) == []


class TestMagicLiteral:
    def _context(self, tmp_path):
        _write(tmp_path, "src/repro/consts.py", 'KIND_RED = "red_kind"\n')
        return ProjectContext(tmp_path, {})

    def test_shadowing_literal_is_reported(self, tmp_path):
        context = self._context(tmp_path)
        path = tmp_path / "use.py"
        path.write_text('def f(k):\n    return k == "red_kind"\n')
        parsed = ParsedFile(path, "use.py")
        found = list(MagicLiteral().check_file(parsed, context))
        assert len(found) == 1
        assert "KIND_RED" in found[0].message

    def test_other_literals_are_clean(self, tmp_path):
        context = self._context(tmp_path)
        path = tmp_path / "use.py"
        path.write_text('def f(k):\n    return k == "blue_kind"\n')
        parsed = ParsedFile(path, "use.py")
        assert list(MagicLiteral().check_file(parsed, context)) == []

    def test_defining_line_is_exempt(self, tmp_path):
        context = self._context(tmp_path)
        parsed = context.src_file("src/repro/consts.py")
        assert list(MagicLiteral().check_file(parsed, context)) == []


class TestEngineAndBaseline:
    def test_fingerprint_is_line_independent(self):
        a = Finding("r", "error", "p.py", 3, "msg")
        b = Finding("r", "error", "p.py", 99, "msg")
        assert a.fingerprint == b.fingerprint

    def test_occurrences_distinguish_duplicates(self):
        a = Finding("r", "error", "p.py", 3, "msg", occurrence=1)
        b = Finding("r", "error", "p.py", 99, "msg", occurrence=2)
        assert a.fingerprint != b.fingerprint

    def test_parse_error_is_a_finding(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text("def broken(:\n")
        run = run_lint([path], default_registry(), rules=["det-hash"],
                       root=tmp_path)
        assert [f.rule for f in run.findings] == ["parse-error"]
        assert run.exit_code == 1

    def test_baseline_roundtrip_and_staleness(self, tmp_path):
        path = tmp_path / "s.py"
        path.write_text("x = hash('k')\n")
        run = run_lint([path], default_registry(), rules=["det-hash"],
                       root=tmp_path)
        baseline_path = tmp_path / "baseline.json"
        save_baseline(list(run.findings), baseline_path)
        again = run_lint([path], default_registry(), rules=["det-hash"],
                         baseline_path=baseline_path, root=tmp_path)
        assert again.exit_code == 0
        assert len(again.diff.baselined) == 1
        path.write_text("x = 1\n")
        fixed = run_lint([path], default_registry(), rules=["det-hash"],
                         baseline_path=baseline_path, root=tmp_path)
        assert fixed.exit_code == 0
        assert len(fixed.diff.stale) == 1

    def test_diff_marks_new_findings(self):
        old = [Finding("r", "error", "p.py", 1, "old")]
        now = [Finding("r", "error", "p.py", 1, "old"),
               Finding("r", "error", "p.py", 2, "new")]
        diff = diff_against_baseline(now, old)
        assert [f.message for f in diff.new] == ["new"]
        assert not diff.is_clean

    def test_render_json_shape(self, tmp_path):
        import json

        path = tmp_path / "s.py"
        path.write_text("x = hash('k')\n")
        run = run_lint([path], default_registry(), rules=["det-hash"],
                       root=tmp_path)
        payload = json.loads(render_json(run))
        assert payload["exit_code"] == 1
        assert payload["new"][0]["rule"] == "det-hash"
        assert set(payload) == {
            "files", "new", "baselined", "stale", "exit_code"
        }


class TestRepoLintsClean:
    """The acceptance invariant: src/ vs the committed baseline."""

    def test_src_is_clean_against_committed_baseline(self):
        run = run_lint([REPO_ROOT / "src"], default_registry(),
                       baseline_path=BASELINE)
        assert [f.render() for f in run.diff.new] == []
        assert run.diff.stale == ()
        assert run.exit_code == 0

    def test_committed_baseline_holds_warnings_only(self):
        for finding in load_baseline(BASELINE):
            assert finding.severity == SEVERITY_WARNING, finding.render()

    def test_baseline_matches_fresh_run_exactly(self):
        run = run_lint([REPO_ROOT / "src"], default_registry())
        fresh = {f.fingerprint for f in run.findings}
        committed = {f.fingerprint for f in load_baseline(BASELINE)}
        assert fresh == committed


class TestCliLint:
    def test_list_rules_exits_zero(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "unit-mixed-arithmetic" in out
        assert "contract-dispatch" in out

    def test_clean_repo_exits_zero(self, capsys):
        code = cli_main([
            "lint", str(REPO_ROOT / "src"), "--baseline", str(BASELINE),
        ])
        capsys.readouterr()
        assert code == 0

    def test_seeded_violation_fails_the_cli(self, capsys):
        seeded = REPO_ROOT / "src" / "repro" / "_lint_seed_fixture.py"
        seeded.write_text(
            '"""Temporary lint fixture (removed by the test)."""\n'
            "def f(a_us, b_ms):\n"
            '    """Mix units."""\n'
            "    return a_us + b_ms\n"
        )
        try:
            code = cli_main([
                "lint", str(REPO_ROOT / "src"),
                "--baseline", str(BASELINE),
            ])
        finally:
            seeded.unlink()
        capsys.readouterr()
        assert code == 1

    def test_json_format_on_violation(self, tmp_path, capsys):
        import json

        path = tmp_path / "s.py"
        path.write_text("x = hash('k')\n")
        code = cli_main(["lint", str(path), "--format", "json",
                         "--baseline", str(tmp_path / "none.json")])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert any(f["rule"] == "det-hash" for f in payload["new"])


class TestSerializerRoundtrips:
    """The live counterparts of contract-roundtrip: real to_dict rows
    survive from_dict bit-for-bit."""

    def test_sweep_record_roundtrip(self):
        from repro.e2e import E2EPrediction
        from repro.sweep.result import SweepPoint, SweepRecord

        record = SweepRecord(
            point=SweepPoint("none", 512, "V100", "shared"),
            prediction=E2EPrediction(
                total_us=1000.0, cpu_us=400.0, gpu_us=600.0, active_us=550.0
            ),
        )
        row = record.to_dict()
        assert SweepRecord.from_dict(row).to_dict() == row

    def test_multigpu_sweep_record_roundtrip(self):
        from repro.multigpu.predict import MultiGpuPrediction
        from repro.sweep.result import (
            MultiGpuSweepPoint,
            MultiGpuSweepRecord,
        )

        prediction = MultiGpuPrediction(
            iteration_us=900.0,
            phase_us=(300.0, 200.0),
            collective_us=(150.0, 50.0),
            per_device_phase_us=((300.0, 250.0), (200.0, 180.0)),
            overlap="full",
            exposed_comm_us=120.0,
            comm_us_by_channel={"fabric": 200.0},
        )
        record = MultiGpuSweepRecord(
            point=MultiGpuSweepPoint("plan", 2, "V100x2", "full", "shared"),
            prediction=prediction,
        )
        row = record.to_dict()
        assert MultiGpuSweepRecord.from_dict(row).to_dict() == row

    def test_multigpu_roundtrip_preserves_channel_bottleneck(self):
        from repro.multigpu.predict import MultiGpuPrediction
        from repro.sweep.result import (
            MultiGpuSweepPoint,
            MultiGpuSweepRecord,
        )

        prediction = MultiGpuPrediction(
            iteration_us=900.0,
            phase_us=(100.0,),
            collective_us=(800.0,),
            per_device_phase_us=((100.0,),),
            overlap="none",
            comm_us_by_channel={"fabric": 800.0},
        )
        record = MultiGpuSweepRecord(
            point=MultiGpuSweepPoint("plan", 2, "V100x2", "none", "shared"),
            prediction=prediction,
        )
        row = record.to_dict()
        assert row["bottleneck"] == "fabric"
        assert MultiGpuSweepRecord.from_dict(row).to_dict() == row

    def test_capacity_plan_roundtrip(self):
        import math

        from repro.capacity.planner import CapacityPlan
        from repro.capacity.slo import LatencyBreakdown

        plan = CapacityPlan(
            fleet="A100x2", gpu="A100", gpus_per_replica=2, replicas=4,
            batch_size=16, sharding="round_robin", overlap="full",
            service_us=800.0,
            latency=LatencyBreakdown(
                fill_us=50.0, queue_us=120.0, service_us=800.0
            ),
            throughput_qps=5000.0, utilization=0.6, cost_per_hour=8.0,
            meets_slo=True, nodes=1, bottleneck="fabric",
        )
        row = plan.to_dict()
        assert CapacityPlan.from_dict(row).to_dict() == row

    def test_capacity_plan_roundtrip_saturated(self):
        import math

        from repro.capacity.planner import CapacityPlan
        from repro.capacity.slo import LatencyBreakdown

        plan = CapacityPlan(
            fleet="V100x1", gpu="V100", gpus_per_replica=1, replicas=1,
            batch_size=1, sharding="none", overlap="none",
            service_us=800.0,
            latency=LatencyBreakdown(
                fill_us=0.0, queue_us=math.inf, service_us=800.0
            ),
            throughput_qps=0.0, utilization=1.2, cost_per_hour=1.0,
            meets_slo=False,
        )
        row = plan.to_dict()
        assert row["queue_us"] is None and row["latency_us"] is None
        restored = CapacityPlan.from_dict(row)
        assert math.isinf(restored.latency.queue_us)
        assert restored.to_dict() == row
