"""Unit + integration tests for the Algorithm 1 E2E predictor."""

import pytest

from repro.baselines import predict_kernel_only_us
from repro.e2e import predict_e2e
from repro.graph.transforms import parallelize_independent_branches
from repro.models import build_model
from repro.overheads import OverheadDatabase


class TestAlgorithmProperties:
    def test_total_is_max_of_clocks(self, dlrm_graph, registry, overhead_db):
        pred = predict_e2e(dlrm_graph, registry, overhead_db)
        assert pred.total_us == pytest.approx(max(pred.cpu_us, pred.gpu_us))

    def test_active_no_more_than_gpu_span(self, dlrm_graph, registry, overhead_db):
        pred = predict_e2e(dlrm_graph, registry, overhead_db)
        assert pred.active_us <= pred.gpu_us

    def test_kernel_only_equals_active(self, dlrm_graph, registry, overhead_db):
        pred = predict_e2e(dlrm_graph, registry, overhead_db)
        assert pred.kernel_only_us == pred.active_us
        assert predict_kernel_only_us(dlrm_graph, registry) == pytest.approx(
            pred.active_us
        )

    def test_counts(self, dlrm_graph, registry, overhead_db):
        pred = predict_e2e(dlrm_graph, registry, overhead_db)
        assert pred.num_ops == len(dlrm_graph)
        assert pred.num_kernels == dlrm_graph.num_kernels()

    def test_per_op_attribution_sums_to_active(
        self, dlrm_graph, registry, overhead_db
    ):
        pred = predict_e2e(dlrm_graph, registry, overhead_db)
        assert sum(pred.per_op_active_us.values()) == pytest.approx(pred.active_us)

    def test_monotone_in_t4(self, dlrm_graph, registry, overhead_db):
        lo = predict_e2e(dlrm_graph, registry, overhead_db, t4_us=5.0)
        hi = predict_e2e(dlrm_graph, registry, overhead_db, t4_us=20.0)
        assert hi.total_us > lo.total_us

    def test_batch_monotonicity(self, registry, overhead_db):
        small = predict_e2e(
            build_model("DLRM_default", 256), registry, overhead_db
        )
        large = predict_e2e(
            build_model("DLRM_default", 1024), registry, overhead_db
        )
        assert large.total_us > small.total_us
        assert large.active_us > small.active_us

    def test_predicted_idle_nonnegative(self, dlrm_graph, registry, overhead_db):
        pred = predict_e2e(dlrm_graph, registry, overhead_db)
        assert pred.predicted_idle_us >= 0


class TestAccuracy:
    def test_e2e_within_paper_band(self, device, dlrm_graph, registry, overhead_db):
        """E2E prediction error should be comparable to the paper's."""
        truth = device.run(dlrm_graph, iterations=8, warmup=1)
        pred = predict_e2e(dlrm_graph, registry, overhead_db)
        err = abs(pred.total_us - truth.mean_e2e_us) / truth.mean_e2e_us
        assert err < 0.25

    def test_active_within_paper_band(self, device, dlrm_graph, registry, overhead_db):
        truth = device.run(dlrm_graph, iterations=8, warmup=1)
        pred = predict_e2e(dlrm_graph, registry, overhead_db)
        err = abs(pred.active_us - truth.mean_gpu_active_us) / truth.mean_gpu_active_us
        assert err < 0.16

    def test_kernel_only_much_worse_at_small_batch(
        self, device, dlrm_graph, registry, overhead_db
    ):
        """The paper's core claim (Figure 9)."""
        truth = device.run(dlrm_graph, iterations=8, warmup=1)
        pred = predict_e2e(dlrm_graph, registry, overhead_db)
        e2e_err = abs(pred.total_us - truth.mean_e2e_us) / truth.mean_e2e_us
        ko_err = abs(pred.kernel_only_us - truth.mean_e2e_us) / truth.mean_e2e_us
        assert ko_err > 2 * e2e_err
        assert pred.kernel_only_us < truth.mean_e2e_us  # underestimates


class TestStreams:
    def test_parallel_streams_no_slower(self, dlrm_graph, registry, overhead_db):
        parallel = parallelize_independent_branches(dlrm_graph, 2)
        base = predict_e2e(dlrm_graph, registry, overhead_db)
        multi = predict_e2e(parallel, registry, overhead_db)
        # Same active time; GPU span may shrink with overlap.
        assert multi.active_us == pytest.approx(base.active_us)
        assert multi.gpu_us <= base.gpu_us * 1.01
