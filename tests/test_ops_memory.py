"""Unit tests for memory-movement operators."""

import pytest

from repro.ops import (
    BatchedTranspose,
    Cat,
    CopyDeviceToDevice,
    KernelType,
    SliceBackward,
    ToDevice,
)


class TestCat:
    def test_output_shape(self):
        op = Cat([(4, 2, 8), (4, 3, 8)], dim=1)
        assert op.outputs[0].shape == (4, 5, 8)

    def test_traffic_is_twice_input(self):
        op = Cat([(10,), (6,)], dim=0)
        (k,) = op.kernel_calls()
        assert k.kernel_type == KernelType.CONCAT
        assert k.params["bytes_total"] == 2 * (40 + 24)
        assert k.params["num_inputs"] == 2

    def test_negative_dim(self):
        op = Cat([(2, 3), (2, 4)], dim=-1)
        assert op.outputs[0].shape == (2, 7)

    def test_mismatched_rank_rejected(self):
        with pytest.raises(ValueError):
            Cat([(2, 3), (2, 3, 1)])

    def test_mismatched_other_axis_rejected(self):
        with pytest.raises(ValueError):
            Cat([(2, 3), (3, 3)], dim=1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cat([])

    def test_dim_out_of_range(self):
        with pytest.raises(ValueError):
            Cat([(2, 3)], dim=2)


class TestToDevice:
    def test_h2d_kernel(self):
        op = ToDevice((128, 16))
        (k,) = op.kernel_calls()
        assert k.kernel_type == KernelType.MEMCPY
        assert k.params["h2d"] == 1
        assert k.params["bytes"] == 4 * 128 * 16

    def test_device_transition(self):
        op = ToDevice((4,), "int64")
        assert op.inputs[0].device == "cpu"
        assert op.outputs[0].device == "gpu"
        assert k_bytes(op) == 32


def k_bytes(op):
    return op.kernel_calls()[0].params["bytes"]


class TestD2DCopy:
    def test_not_h2d(self):
        op = CopyDeviceToDevice((16, 16))
        (k,) = op.kernel_calls()
        assert k.params["h2d"] == 0


class TestBatchedTranspose:
    def test_swaps_axes(self):
        op = BatchedTranspose(8, 3, 5)
        assert op.inputs[0].shape == (8, 3, 5)
        assert op.outputs[0].shape == (8, 5, 3)

    def test_kernel_params(self):
        (k,) = BatchedTranspose(8, 3, 5).kernel_calls()
        assert k.kernel_type == KernelType.TRANSPOSE
        assert (k.params["b"], k.params["m"], k.params["n"]) == (8, 3, 5)
        assert k.params["elem_size"] == 4.0

    def test_rescale(self):
        op = BatchedTranspose(8, 3, 5).rescale_batch(8, 16)
        assert op.b == 16


class TestSliceBackward:
    def test_both_directions_allowed(self):
        grow = SliceBackward((4, 2), (4, 10))
        shrink = SliceBackward((4, 10), (4, 2))
        assert grow.outputs[0].shape == (4, 10)
        assert shrink.outputs[0].shape == (4, 2)

    def test_kernel_moves_both_tensors(self):
        op = SliceBackward((4, 2), (4, 10))
        (k,) = op.kernel_calls()
        assert k.params["bytes"] == 4 * (8 + 40)
