"""Unit tests for Chrome-trace export and trace diffing."""

import json

import pytest

from repro.trace import diff_breakdowns, save_chrome_trace, trace_to_chrome


class TestChromeExport:
    def test_valid_json_with_all_events(self, profiled_run):
        data = json.loads(trace_to_chrome(profiled_run.trace))
        events = data["traceEvents"]
        complete = [e for e in events if e.get("ph") == "X"]
        assert len(complete) == len(profiled_run.trace.events)

    def test_gpu_rows_separate_from_cpu(self, profiled_run):
        data = json.loads(trace_to_chrome(profiled_run.trace))
        tids = {
            e["tid"] for e in data["traceEvents"]
            if e.get("ph") == "X" and e["cat"] == "kernel"
        }
        cpu_tids = {
            e["tid"] for e in data["traceEvents"]
            if e.get("ph") == "X" and e["cat"] != "kernel"
        }
        assert tids.isdisjoint(cpu_tids)

    def test_metadata_names_present(self, profiled_run):
        data = json.loads(trace_to_chrome(profiled_run.trace))
        meta = [e for e in data["traceEvents"] if e.get("ph") == "M"]
        names = {e["name"] for e in meta}
        assert "process_name" in names
        assert "thread_name" in names

    def test_file_export(self, profiled_run, tmp_path):
        path = str(tmp_path / "trace.json")
        save_chrome_trace(profiled_run.trace, path)
        with open(path) as f:
            assert "traceEvents" in json.load(f)


class TestDiff:
    def test_self_diff_is_zero(self, profiled_run):
        rows = diff_breakdowns(profiled_run.trace, profiled_run.trace)
        for _, before, after, delta in rows:
            assert delta == pytest.approx(0.0, abs=1e-9)

    def test_diff_detects_change(self, device, profiled_run):
        from repro.models import build_model

        other = device.run(
            build_model("DLRM_default", 1024), iterations=4,
            batch_size=1024, with_profiler=True, warmup=1,
        )
        rows = diff_breakdowns(profiled_run.trace, other.trace)
        e2e_row = rows[-1]
        assert e2e_row[0] == "<e2e>"
        assert e2e_row[3] > 0  # larger batch -> longer iterations

    def test_top_k_limit(self, profiled_run):
        rows = diff_breakdowns(profiled_run.trace, profiled_run.trace, top_k=3)
        assert len(rows) == 4  # 3 ops + the e2e summary
