"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_predict_args(self):
        args = build_parser().parse_args(
            ["predict", "--model", "DLRM_default", "--batch", "512"]
        )
        assert args.model == "DLRM_default"
        assert args.batch == 512
        assert args.gpu == "V100"

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["predict", "--model", "bert", "--batch", "4"]
            )

    def test_unknown_gpu_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["breakdown", "--gpu", "H100", "--model", "DLRM_DDP",
                 "--batch", "4"]
            )

    def test_sweep_args(self):
        args = build_parser().parse_args(
            ["sweep", "--model", "DLRM_default", "--batch", "512",
             "--batches", "256,512", "--fuse-embeddings"]
        )
        assert args.batches == "256,512"
        assert args.fuse_embeddings


class TestCommands:
    def test_memory_command(self, capsys):
        assert main(["memory", "--model", "DLRM_default", "--batch", "512"]) == 0
        out = capsys.readouterr().out
        assert "total" in out
        assert "GiB" in out

    def test_breakdown_command(self, capsys):
        assert main(
            ["breakdown", "--model", "DLRM_DDP", "--batch", "256",
             "--top", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "utilization" in out
        assert "Idle" in out

    def test_export_trace_command(self, tmp_path, capsys):
        out_path = str(tmp_path / "trace.json")
        assert main(
            ["export-trace", "--model", "DLRM_default", "--batch", "256",
             "--iterations", "2", "--out", out_path]
        ) == 0
        import json

        with open(out_path) as f:
            assert "traceEvents" in json.load(f)

    def test_analyze_then_predict(self, tmp_path, capsys, monkeypatch):
        """Full CLI round trip at tiny scale."""
        import repro.cli as cli
        from tests.conftest import TINY_SPACE

        original = cli.build_perf_models

        def fast_build(device, **kwargs):
            return original(
                device, microbench_scale=0.1, epochs=60, space=TINY_SPACE
            )

        monkeypatch.setattr(cli, "build_perf_models", fast_build)
        assets = str(tmp_path / "assets.json")
        assert main(["analyze", "--out", assets, "--scale", "0.1"]) == 0
        assert main(
            ["predict", "--model", "DLRM_default", "--batch", "256",
             "--assets", assets, "--compare"]
        ) == 0
        out = capsys.readouterr().out
        assert "predicted per-batch time" in out
        assert "ground truth" in out

    def test_sweep_command(self, tmp_path, capsys, monkeypatch):
        import json

        import repro.cli as cli
        from tests.conftest import TINY_SPACE

        original = cli.build_perf_models

        def fast_build(device, **kwargs):
            return original(
                device, microbench_scale=0.1, epochs=60, space=TINY_SPACE
            )

        monkeypatch.setattr(cli, "build_perf_models", fast_build)
        out_path = str(tmp_path / "sweep.json")
        assert main(
            ["sweep", "--model", "DLRM_default", "--batch", "256",
             "--batches", "128,256,512", "--out", out_path]
        ) == 0
        out = capsys.readouterr().out
        assert "best predicted throughput" in out
        with open(out_path) as f:
            rows = json.load(f)
        assert [row["batch_size"] for row in rows] == [128, 256, 512]
        assert all(row["total_us"] > 0 for row in rows)

    def test_sweep_state_and_prune_flags(self, tmp_path, capsys, monkeypatch):
        """--state runs incrementally on the second pass; --cutoff-ms
        and --parallel reuse the same walk."""
        import json

        import repro.cli as cli
        from tests.conftest import TINY_SPACE

        original = cli.build_perf_models

        def fast_build(device, **kwargs):
            return original(
                device, microbench_scale=0.1, epochs=60, space=TINY_SPACE
            )

        monkeypatch.setattr(cli, "build_perf_models", fast_build)
        state_path = str(tmp_path / "state.json")
        base = ["sweep", "--model", "DLRM_default", "--batch", "256",
                "--batches", "128,256", "--state", state_path]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert "Saved sweep state" in first
        with open(state_path) as f:
            saved = json.load(f)
        assert all(row["fingerprint"] for row in saved["records"])

        assert main(base + ["--parallel", "2"]) == 0
        second = capsys.readouterr().out
        assert "reused 2 point(s)" in second
        assert "0 re-evaluated" in second

        assert main(
            ["sweep", "--model", "DLRM_default", "--batch", "256",
             "--batches", "128,256", "--parallel", "2",
             "--cutoff-ms", "0.0001"]
        ) == 0
        out = capsys.readouterr().out
        assert "pruned 2 point(s)" in out

    def test_sweep_bad_batches(self, capsys):
        assert main(
            ["sweep", "--model", "DLRM_default", "--batch", "256",
             "--batches", "abc"]
        ) == 2
        assert "bad --batches" in capsys.readouterr().err

    def test_multigpu_parser_args(self):
        args = build_parser().parse_args(
            ["multigpu", "--model", "DLRM_default", "--batch", "1024",
             "--devices", "2", "--fabric", "PCIe", "--overlap", "full",
             "--fleet", "V100,A100"]
        )
        assert args.devices == 2
        assert args.fabric == "PCIe"
        assert args.overlap == "full"
        assert args.fleet == "V100,A100"

    def test_multigpu_command(self, capsys, monkeypatch):
        import repro.cli as cli
        from tests.conftest import TINY_SPACE

        original = cli.build_perf_models

        def fast_build(device, **kwargs):
            return original(
                device, microbench_scale=0.1, epochs=60, space=TINY_SPACE
            )

        monkeypatch.setattr(cli, "build_perf_models", fast_build)
        assert main(
            ["multigpu", "--model", "DLRM_default", "--batch", "256",
             "--devices", "2", "--fabric", "PCIe", "--compare"]
        ) == 0
        out = capsys.readouterr().out
        assert "none" in out
        assert "full" in out
        assert "simulated" in out

    def test_multigpu_rejects_non_dlrm(self, capsys):
        assert main(
            ["multigpu", "--model", "resnet50", "--batch", "64",
             "--devices", "2"]
        ) == 2
        assert "DLRM" in capsys.readouterr().err

    def test_multigpu_rejects_bad_fleet(self, capsys):
        assert main(
            ["multigpu", "--model", "DLRM_default", "--batch", "256",
             "--devices", "4", "--fleet", "V100,V100"]
        ) == 2
        assert "--fleet" in capsys.readouterr().err

    def test_multigpu_rejects_zero_devices(self, capsys):
        assert main(
            ["multigpu", "--model", "DLRM_default", "--batch", "256",
             "--devices", "0"]
        ) == 2
        assert "--devices" in capsys.readouterr().err

    def test_multigpu_rejects_indivisible_batch(self, capsys):
        assert main(
            ["multigpu", "--model", "DLRM_default", "--batch", "255",
             "--devices", "2"]
        ) == 2
        assert "divisible" in capsys.readouterr().err

    def test_multigpu_rejects_indivisible_nodes(self, capsys):
        assert main(
            ["multigpu", "--model", "DLRM_default", "--batch", "256",
             "--devices", "4", "--nodes", "3"]
        ) == 2
        assert "nodes" in capsys.readouterr().err

    def test_multigpu_multinode_command(self, capsys, monkeypatch):
        """Hierarchical topology path: channel split + bottleneck."""
        import repro.cli as cli
        from tests.conftest import TINY_SPACE

        original = cli.build_perf_models

        def fast_build(device, **kwargs):
            return original(
                device, microbench_scale=0.1, epochs=60, space=TINY_SPACE
            )

        monkeypatch.setattr(cli, "build_perf_models", fast_build)
        assert main(
            ["multigpu", "--model", "DLRM_default", "--batch", "256",
             "--devices", "4", "--nodes", "2", "--network", "100GbE",
             "--overlap", "full", "--compare"]
        ) == 0
        out = capsys.readouterr().out
        assert "2n x 2 NVLink/100GbE" in out
        assert "fabric busy" in out
        assert "intra" in out and "inter" in out
        assert "simulated" in out


class TestCapacityCommand:
    def test_capacity_parser_args(self):
        args = build_parser().parse_args(
            ["capacity", "--gpu", "A100", "--model", "DLRM_default",
             "--batch", "256", "--qps", "100000", "--slo-ms", "2",
             "--replica-gpus", "1,2", "--max-replicas", "64"]
        )
        assert args.qps == 100000.0
        assert args.slo_ms == 2.0
        assert args.percentile == 99.0
        assert args.replica_gpus == "1,2"
        assert args.max_replicas == 64

    def test_capacity_rejects_non_dlrm(self, capsys):
        assert main(
            ["capacity", "--model", "resnet50", "--batch", "64",
             "--qps", "1000", "--slo-ms", "10"]
        ) == 2
        assert "DLRM" in capsys.readouterr().err

    def test_capacity_rejects_bad_batches(self, capsys):
        assert main(
            ["capacity", "--model", "DLRM_default", "--batch", "64",
             "--qps", "1000", "--slo-ms", "10", "--batches", "abc"]
        ) == 2
        assert "bad --batches" in capsys.readouterr().err

    def test_capacity_rejects_bad_replica_gpus(self, capsys):
        assert main(
            ["capacity", "--model", "DLRM_default", "--batch", "64",
             "--qps", "1000", "--slo-ms", "10", "--replica-gpus", "0"]
        ) == 2
        assert "bad --replica-gpus" in capsys.readouterr().err

    def test_capacity_rejects_indivisible_replica_nodes(self, capsys):
        assert main(
            ["capacity", "--model", "DLRM_default", "--batch", "64",
             "--qps", "1000", "--slo-ms", "10", "--replica-gpus", "4",
             "--replica-nodes", "3"]
        ) == 2
        assert "divides" in capsys.readouterr().err

    def test_capacity_multinode_command(self, tmp_path, capsys, monkeypatch):
        """Multi-node replica shapes flow through the CLI search."""
        import json

        import repro.cli as cli
        from tests.conftest import TINY_SPACE

        original = cli.build_perf_models

        def fast_build(device, **kwargs):
            return original(
                device, microbench_scale=0.1, epochs=60, space=TINY_SPACE
            )

        monkeypatch.setattr(cli, "build_perf_models", fast_build)
        out_path = str(tmp_path / "plans.json")
        assert main(
            ["capacity", "--model", "DLRM_default", "--batch", "256",
             "--qps", "10000", "--slo-ms", "50", "--batches", "128",
             "--replica-gpus", "4", "--replica-nodes", "1,2",
             "--out", out_path]
        ) == 0
        out = capsys.readouterr().out
        assert "bound by" in out
        with open(out_path) as f:
            rows = json.load(f)
        assert {row["fleet"] for row in rows} == {"V100x4", "V100x4@2n"}
        assert all("bottleneck" in row for row in rows)

    def test_capacity_command(self, tmp_path, capsys, monkeypatch):
        """Feasible relaxed-SLO search through the real CLI path."""
        import json

        import repro.cli as cli
        from tests.conftest import TINY_SPACE

        original = cli.build_perf_models

        def fast_build(device, **kwargs):
            return original(
                device, microbench_scale=0.1, epochs=60, space=TINY_SPACE
            )

        monkeypatch.setattr(cli, "build_perf_models", fast_build)
        out_path = str(tmp_path / "plans.json")
        assert main(
            ["capacity", "--model", "DLRM_default", "--batch", "256",
             "--qps", "10000", "--slo-ms", "50", "--batches", "64,128",
             "--replica-gpus", "1,2", "--out", out_path]
        ) == 0
        out = capsys.readouterr().out
        assert "cheapest feasible plan" in out
        with open(out_path) as f:
            rows = json.load(f)
        assert rows[0]["meets_slo"] is True
        assert {row["fleet"] for row in rows} == {"V100x1", "V100x2"}

    def test_capacity_infeasible_returns_one(self, capsys, monkeypatch):
        import repro.cli as cli
        from tests.conftest import TINY_SPACE

        original = cli.build_perf_models

        def fast_build(device, **kwargs):
            return original(
                device, microbench_scale=0.1, epochs=60, space=TINY_SPACE
            )

        monkeypatch.setattr(cli, "build_perf_models", fast_build)
        assert main(
            ["capacity", "--model", "DLRM_default", "--batch", "64",
             "--qps", "5000000", "--slo-ms", "0.1", "--batches", "64",
             "--max-replicas", "2"]
        ) == 1
        assert "no evaluated configuration" in capsys.readouterr().err


class TestServeSimCommand:
    def test_serve_sim_parser_args(self):
        args = build_parser().parse_args(
            ["serve-sim", "--model", "DLRM_default", "--batch", "64",
             "--qps", "20000", "--slo-ms", "10", "--replicas", "4",
             "--arrival", "flash_crowd", "--spike-start-ms", "50",
             "--spike-duration-ms", "150", "--spike-multiplier", "4",
             "--kill-replica", "0", "--kill-at-ms", "80"]
        )
        assert args.qps == 20000.0
        assert args.arrival == "flash_crowd"
        assert args.spike_multiplier == 4.0
        assert args.kill_replica == 0
        assert args.timeout_ms == 1.0
        assert args.autoscale_max == 0

    def test_serve_sim_rejects_non_dlrm(self, capsys):
        assert main(
            ["serve-sim", "--model", "resnet50", "--batch", "64",
             "--qps", "1000", "--slo-ms", "10"]
        ) == 2
        assert "DLRM" in capsys.readouterr().err

    def test_serve_sim_rejects_bad_scenario(self, capsys):
        assert main(
            ["serve-sim", "--model", "DLRM_default", "--batch", "64",
             "--qps", "1000", "--slo-ms", "10", "--arrival", "diurnal",
             "--amplitude", "1.5"]
        ) == 2
        assert "bad serving scenario" in capsys.readouterr().err

    def test_serve_sim_rejects_zero_replicas(self, capsys):
        assert main(
            ["serve-sim", "--model", "DLRM_default", "--batch", "64",
             "--qps", "1000", "--slo-ms", "10", "--replicas", "0"]
        ) == 2
        assert "bad serving scenario" in capsys.readouterr().err

    def test_serve_sim_command(self, tmp_path, capsys, monkeypatch):
        """One analysis pass, then met- and missed-SLO simulations."""
        import json

        import repro.cli as cli
        from repro.serving import SimulatedServingReport
        from tests.conftest import TINY_SPACE

        original = cli.build_perf_models

        def fast_build(device, **kwargs):
            return original(
                device, microbench_scale=0.1, epochs=60, space=TINY_SPACE
            )

        monkeypatch.setattr(cli, "build_perf_models", fast_build)
        assets = str(tmp_path / "assets.json")
        assert main(["analyze", "--out", assets, "--scale", "0.1"]) == 0
        capsys.readouterr()

        out_path = str(tmp_path / "report.json")
        base = ["serve-sim", "--model", "DLRM_default", "--batch", "64",
                "--qps", "10000", "--replicas", "2", "--requests", "4000",
                "--assets", assets]
        assert main(base + ["--slo-ms", "50", "--out", out_path]) == 0
        out = capsys.readouterr().out
        assert "scenario: DLRM_default@V100 x2 poisson" in out
        assert "closed-form p99 (steady Poisson)" in out
        assert "SLO p99 <= 50 ms: met" in out
        with open(out_path) as f:
            row = json.load(f)
        report = SimulatedServingReport.from_dict(row)
        assert report.completed == 4000
        assert report.latency_p99_us <= 50_000.0

        # The same scenario against an unreachable SLO exits 1.
        assert main(base + ["--slo-ms", "0.001"]) == 1
        assert "MISSED" in capsys.readouterr().out
