"""Unit + integration tests for the multi-GPU extension."""

import pytest

from repro.hardware import TESLA_V100
from repro.models.dlrm import DLRM_DEFAULT
from repro.multigpu import (
    NVLINK,
    PCIE_FABRIC,
    CollectiveModel,
    CollectivePhase,
    GroundTruthCollectives,
    MultiGpuPlan,
    MultiGpuSimulator,
    all2all_wire_bytes,
    allreduce_wire_bytes,
    build_multi_gpu_dlrm_plan,
    dense_parameter_bytes,
    predict_multi_gpu,
)


class TestWireVolumes:
    def test_all2all_fraction(self):
        assert all2all_wire_bytes(1000.0, 4) == pytest.approx(750.0)
        assert all2all_wire_bytes(1000.0, 1) == 0.0

    def test_allreduce_ring(self):
        assert allreduce_wire_bytes(1000.0, 4) == pytest.approx(1500.0)

    def test_bad_device_count(self):
        with pytest.raises(ValueError):
            all2all_wire_bytes(1.0, 0)


class TestCollectives:
    def test_truth_monotone_in_bytes(self):
        truth = GroundTruthCollectives(NVLINK)
        small = truth.duration_us("all2all", 1e6, 4)
        large = truth.duration_us("all2all", 1e8, 4)
        assert large > small

    def test_nvlink_faster_than_pcie(self):
        nv = GroundTruthCollectives(NVLINK).duration_us("allreduce", 1e8, 4)
        pcie = GroundTruthCollectives(PCIE_FABRIC).duration_us("allreduce", 1e8, 4)
        assert nv < pcie

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            GroundTruthCollectives(NVLINK).duration_us("broadcast", 1.0, 2)

    def test_calibrated_model_accurate(self):
        truth = GroundTruthCollectives(NVLINK)
        model = CollectiveModel.calibrate(truth, 4)
        for kind in ("all2all", "allreduce"):
            for size in (1e6, 1e7, 1e8):
                measured = truth.measure_us(kind, size, 4)
                predicted = model.predict_us(kind, size, 4)
                assert predicted == pytest.approx(measured, rel=0.25)

    def test_model_rejects_bad_bw(self):
        with pytest.raises(ValueError):
            CollectiveModel(measured_bw_gbs=0.0, base_latency_us=5.0)


class TestPlan:
    def test_plan_structure(self):
        plan = build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 4)
        assert plan.num_devices == 4
        assert plan.num_phases == 4
        assert len(plan.collectives) == 3
        assert [c.kind for c in plan.collectives] == [
            "all2all", "all2all", "allreduce",
        ]

    def test_segments_valid_graphs(self):
        plan = build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 2)
        for phase in plan.compute_phases:
            for segment in phase:
                segment.validate()

    def test_round_robin_default_assignment(self):
        plan = build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 4)
        assigned = sorted(i for dev in plan.table_assignment for i in dev)
        assert assigned == list(range(DLRM_DEFAULT.num_tables))

    def test_indivisible_batch_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1000, 3)

    def test_incomplete_assignment_rejected(self):
        with pytest.raises(ValueError, match="cover"):
            build_multi_gpu_dlrm_plan(
                DLRM_DEFAULT, 1024, 2, table_assignment=[[0, 1], [2]]
            )

    def test_dense_parameter_bytes_positive(self):
        assert dense_parameter_bytes(DLRM_DEFAULT) > 1e6

    def test_collective_phase_validation(self):
        with pytest.raises(ValueError):
            CollectivePhase("gather", 1.0)
        with pytest.raises(ValueError):
            CollectivePhase("all2all", -1.0)

    def test_plan_shape_validation(self):
        plan = build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 2)
        with pytest.raises(ValueError):
            MultiGpuPlan(
                num_devices=3,
                compute_phases=plan.compute_phases,
                collectives=plan.collectives,
            )


class TestSimulateAndPredict:
    @pytest.fixture(scope="class")
    def plan(self):
        return build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 4)

    @pytest.fixture(scope="class")
    def truth(self, plan):
        return MultiGpuSimulator(TESLA_V100, NVLINK, seed=9).run(plan, 3)

    def test_truth_structure(self, plan, truth):
        assert truth.iteration_us > 0
        assert len(truth.phase_us) == plan.num_phases
        assert len(truth.collective_us) == 3
        assert truth.iteration_us == pytest.approx(
            truth.compute_us + truth.communication_us
        )

    def test_phase_gating_at_slowest_device(self, truth):
        for phase, devices in zip(truth.phase_us, truth.per_device_phase_us):
            assert phase == pytest.approx(max(devices))

    def test_straggler_loss_nonnegative(self, truth):
        assert truth.straggler_loss_us >= 0

    def test_prediction_tracks_truth(self, plan, truth, registry, overhead_db):
        model = CollectiveModel.calibrate(GroundTruthCollectives(NVLINK), 4)
        pred = predict_multi_gpu(plan, registry, overhead_db, model)
        err = abs(pred.iteration_us - truth.iteration_us) / truth.iteration_us
        assert err < 0.25

    def test_multi_gpu_faster_than_single(self, truth, device):
        from repro.models import build_model

        single = device.run(
            build_model("DLRM_default", 1024), iterations=3, warmup=1
        )
        assert truth.iteration_us < single.mean_e2e_us

    def test_balanced_sharding_beats_skewed(self, registry, overhead_db):
        """The Section V-A(c) load-balancing claim, end to end."""
        model = CollectiveModel.calibrate(GroundTruthCollectives(NVLINK), 2)
        skewed = build_multi_gpu_dlrm_plan(
            DLRM_DEFAULT, 1024, 2,
            table_assignment=[[0, 1, 2, 3, 4, 5, 6], [7]],
        )
        balanced = build_multi_gpu_dlrm_plan(
            DLRM_DEFAULT, 1024, 2,
            table_assignment=[[0, 1, 2, 3], [4, 5, 6, 7]],
        )
        p_skewed = predict_multi_gpu(skewed, registry, overhead_db, model)
        p_balanced = predict_multi_gpu(balanced, registry, overhead_db, model)
        assert p_balanced.iteration_us < p_skewed.iteration_us
        # And the simulator agrees.
        sim = MultiGpuSimulator(TESLA_V100, NVLINK, seed=4)
        t_skewed = sim.run(skewed, 2)
        t_balanced = sim.run(balanced, 2)
        assert t_balanced.iteration_us < t_skewed.iteration_us

    def test_pcie_fabric_increases_comm_share(self, plan, registry, overhead_db):
        nv_model = CollectiveModel.calibrate(GroundTruthCollectives(NVLINK), 4)
        pcie_model = CollectiveModel.calibrate(
            GroundTruthCollectives(PCIE_FABRIC), 4
        )
        nv = predict_multi_gpu(plan, registry, overhead_db, nv_model)
        pcie = predict_multi_gpu(plan, registry, overhead_db, pcie_model)
        assert pcie.communication_fraction > nv.communication_fraction
