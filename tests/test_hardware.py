"""Unit tests for hardware spec sheets."""

import pytest

from repro.hardware import (
    ALL_GPUS,
    PAPER_GPUS,
    TESLA_P100,
    TESLA_V100,
    TITAN_XP,
    GpuSpec,
    gpu_by_name,
)


class TestSpecs:
    def test_paper_gpus_present(self):
        assert set(PAPER_GPUS) == {"V100", "TITAN_Xp", "P100"}

    def test_v100_datasheet(self):
        assert TESLA_V100.num_sms == 80
        assert TESLA_V100.peak_dram_bw_gbs == pytest.approx(900.0)
        assert TESLA_V100.l2_cache_bytes == 6 * 1024 * 1024

    def test_gflops_property(self):
        assert TESLA_V100.peak_fp32_gflops == pytest.approx(15700.0)

    def test_relative_ordering(self):
        """V100 should dominate P100 and Xp on compute and bandwidth."""
        assert TESLA_V100.peak_fp32_tflops > TESLA_P100.peak_fp32_tflops
        assert TESLA_V100.peak_dram_bw_gbs > TITAN_XP.peak_dram_bw_gbs

    def test_lookup_by_name(self):
        assert gpu_by_name("V100") is TESLA_V100

    def test_lookup_unknown(self):
        with pytest.raises(KeyError, match="known GPUs"):
            gpu_by_name("H100")

    def test_with_overrides_returns_new_spec(self):
        faster = TESLA_V100.with_overrides(peak_dram_bw_gbs=1800.0)
        assert faster.peak_dram_bw_gbs == 1800.0
        assert TESLA_V100.peak_dram_bw_gbs == 900.0
        assert isinstance(faster, GpuSpec)

    def test_all_gpus_superset(self):
        assert set(PAPER_GPUS) < set(ALL_GPUS)
