"""Unit tests for the ground-truth simulator (latency, host, engine)."""

import numpy as np
import pytest

from repro.hardware import DEFAULT_CPU, TESLA_P100, TESLA_V100, CpuSpec
from repro.models import build_model
from repro.ops import KernelCall, KernelType, gemm_kernel
from repro.simulator import (
    GroundTruthLatency,
    HostOverheadModel,
    SimulatedDevice,
    T1,
    T2,
    T4,
    T5,
)


class TestLatencyModel:
    @pytest.fixture(scope="class")
    def lat(self):
        return GroundTruthLatency(TESLA_V100)

    def test_noiseless_is_deterministic(self, lat):
        k = gemm_kernel(512, 512, 512)
        assert lat.duration_us(k) == lat.duration_us(k)

    def test_noise_varies(self, lat):
        k = gemm_kernel(512, 512, 512)
        rng = np.random.default_rng(0)
        samples = {lat.duration_us(k, rng) for _ in range(5)}
        assert len(samples) == 5

    def test_gemm_monotone_in_k(self, lat):
        t1 = lat.duration_us(gemm_kernel(1024, 1024, 256))
        t2 = lat.duration_us(gemm_kernel(1024, 1024, 1024))
        assert t2 > t1

    def test_gemm_wave_quantization_staircase(self, lat):
        """Just past a full wave, time jumps disproportionately."""
        # 80 SMs, 128x64 tiles: m=1280, n=512 -> 80 tiles = 1 wave.
        t_full = lat.duration_us(gemm_kernel(1280, 512, 512))
        t_plus = lat.duration_us(gemm_kernel(1408, 512, 512))  # 88 tiles
        increase = (t_plus - t_full) / t_full
        size_increase = (1408 - 1280) / 1280
        assert increase > size_increase  # superlinear at the boundary

    def test_embedding_small_table_faster_per_byte(self, lat):
        """L2-resident tables beat DRAM-bound ones per unit traffic."""
        params = {"B": 512, "T": 4, "L": 8, "D": 64, "rows_per_block": 32}
        small = KernelCall(KernelType.EMBEDDING_FWD, dict(params, E=1_000))
        big = KernelCall(KernelType.EMBEDDING_FWD, dict(params, E=5_000_000))
        assert lat.duration_us(small) < lat.duration_us(big)

    def test_embedding_backward_slower_than_forward(self, lat):
        params = {"B": 512, "E": 1_000_000, "T": 4, "L": 8, "D": 64,
                  "rows_per_block": 32}
        fwd = KernelCall(KernelType.EMBEDDING_FWD, params)
        bwd = KernelCall(KernelType.EMBEDDING_BWD, params)
        assert lat.duration_us(bwd) > lat.duration_us(fwd)

    def test_transpose_small_dim_penalty(self, lat):
        wide = KernelCall(KernelType.TRANSPOSE,
                          {"b": 256, "m": 128, "n": 128, "elem_size": 4.0})
        thin = KernelCall(KernelType.TRANSPOSE,
                          {"b": 256 * 32, "m": 4, "n": 128, "elem_size": 4.0})
        # Same bytes, worse coalescing for the thin case.
        assert lat.duration_us(thin) > lat.duration_us(wide)

    def test_memcpy_directions(self, lat):
        h2d = KernelCall(KernelType.MEMCPY, {"bytes": 64e6, "h2d": 1})
        d2d = KernelCall(KernelType.MEMCPY, {"bytes": 64e6, "h2d": 0})
        assert lat.duration_us(h2d) > lat.duration_us(d2d)  # PCIe slower

    def test_unknown_kernel_type_rejected(self, lat):
        bogus = KernelCall(KernelType.GEMM, {"m": 1, "n": 1, "k": 1, "batch": 1})
        object.__setattr__(bogus, "kernel_type", "warp_shuffle")
        with pytest.raises(ValueError):
            lat.duration_us(bogus)

    def test_faster_gpu_is_faster(self):
        k = gemm_kernel(2048, 2048, 2048)
        v100 = GroundTruthLatency(TESLA_V100).duration_us(k)
        p100 = GroundTruthLatency(TESLA_P100).duration_us(k)
        assert v100 < p100

    def test_minimum_duration_floor(self, lat):
        tiny = KernelCall(KernelType.ELEMENTWISE,
                          {"flop": 0.0, "bytes_read": 0.0, "bytes_write": 1.0})
        assert lat.duration_us(tiny) >= 0.3


class TestHostModel:
    @pytest.fixture(scope="class")
    def host(self):
        return HostOverheadModel(DEFAULT_CPU)

    def test_t1_op_independent(self, host):
        assert host.mean_us("aten::relu", T1) == host.mean_us("aten::bmm", T1)

    def test_t2_op_dependent(self, host):
        heavy = host.mean_us("LookupFunction", T2)
        light = host.mean_us("aten::relu", T2)
        assert heavy > light

    def test_memcpy_t4_extra(self, host):
        assert host.mean_us("aten::to", T4, is_memcpy=True) > \
            host.mean_us("aten::to", T4, is_memcpy=False)

    def test_unknown_type_rejected(self, host):
        with pytest.raises(ValueError):
            host.mean_us("aten::relu", "T9")

    def test_samples_positive(self, host):
        rng = np.random.default_rng(1)
        for _ in range(200):
            assert host.sample("aten::relu", T5, rng) > 0

    def test_overhead_scale(self):
        slow = HostOverheadModel(CpuSpec("slow", overhead_scale=2.0))
        fast = HostOverheadModel(CpuSpec("fast", overhead_scale=1.0))
        assert slow.mean_us("aten::relu", T2) == pytest.approx(
            2.0 * fast.mean_us("aten::relu", T2)
        )

    def test_sample_mean_close_to_mean_us(self, host):
        rng = np.random.default_rng(2)
        samples = [host.sample("aten::linear", T2, rng) for _ in range(4000)]
        mean = host.mean_us("aten::linear", T2)
        # Long tail pushes the sample mean slightly above mean_us.
        assert mean < np.mean(samples) < mean * 1.35


class TestEngine:
    def test_determinism(self):
        g = build_model("DLRM_default", 128)
        a = SimulatedDevice(TESLA_V100, seed=7).run(g, iterations=3)
        b = SimulatedDevice(TESLA_V100, seed=7).run(g, iterations=3)
        assert [it.e2e_us for it in a.iterations] == [it.e2e_us for it in b.iterations]

    def test_seed_changes_results(self):
        g = build_model("DLRM_default", 128)
        a = SimulatedDevice(TESLA_V100, seed=7).run(g, iterations=1)
        b = SimulatedDevice(TESLA_V100, seed=8).run(g, iterations=1)
        assert a.mean_e2e_us != b.mean_e2e_us

    def test_e2e_at_least_active(self, device):
        g = build_model("DLRM_default", 128)
        r = device.run(g, iterations=3)
        for it in r.iterations:
            assert it.e2e_us >= it.gpu_active_us

    def test_utilization_bounded(self, device):
        g = build_model("DLRM_default", 128)
        r = device.run(g, iterations=3)
        assert 0.0 < r.mean_gpu_utilization <= 1.0

    def test_trace_only_with_profiler(self, device):
        g = build_model("DLRM_default", 128)
        assert device.run(g, iterations=1).trace is None
        assert device.run(g, iterations=1, with_profiler=True).trace is not None

    def test_warmup_not_traced(self, device):
        g = build_model("DLRM_default", 128)
        r = device.run(g, iterations=2, with_profiler=True, warmup=2)
        iterations = {e.iteration for e in r.trace.events}
        assert iterations == {0, 1}

    def test_profiler_slows_host(self, device):
        g = build_model("DLRM_default", 128)
        plain = device.run(g, iterations=3).mean_e2e_us
        profiled = device.run(g, iterations=3, with_profiler=True).mean_e2e_us
        assert profiled > plain * 0.99  # never faster (noise-tolerant)

    def test_bad_iterations_rejected(self, device):
        g = build_model("DLRM_default", 128)
        with pytest.raises(ValueError):
            device.run(g, iterations=0)

    def test_measure_kernel_positive(self, device):
        t = device.measure_kernel_us(gemm_kernel(256, 256, 256))
        assert t > 0

    def test_kernel_events_disjoint_per_stream(self, device):
        """True kernel execution windows never overlap on a stream.

        Recorded durations carry the per-event profiler inflation (as
        real profiler traces do), so the true window is the recorded
        one minus the trace's advertised GPU profiler overhead.
        """
        g = build_model("DLRM_default", 128)
        trace = device.run(g, iterations=2, with_profiler=True).trace
        kernels = sorted(
            (e for e in trace.events if e.cat == "kernel"),
            key=lambda e: e.ts,
        )
        overhead = trace.gpu_profiler_overhead_us
        for a, b in zip(kernels[:-1], kernels[1:]):
            if a.stream == b.stream:
                assert b.ts >= a.end - overhead - 1e-6

    def test_profiler_does_not_perturb_device_timeline(self, device, monkeypatch):
        """Regression: GPU profiler overhead must only inflate the
        *recorded* event durations, never the simulated device
        timeline (stream availability, sync-copy blocking, E2E)."""
        from repro.simulator import engine as engine_mod

        g = build_model("DLRM_default", 128)

        def run_with_overhead(us):
            monkeypatch.setattr(engine_mod, "GPU_PROFILER_OVERHEAD_US", us)
            return device.run(g, iterations=3, with_profiler=True, warmup=1)

        small = run_with_overhead(0.0)
        huge = run_with_overhead(1000.0)
        for a, b in zip(small.iterations, huge.iterations):
            assert b.e2e_us == pytest.approx(a.e2e_us)
            assert b.gpu_active_us == pytest.approx(a.gpu_active_us)
        # ... while the recorded kernel durations do carry the overhead.
        dur_small = [e.dur for e in small.trace.events if e.cat == "kernel"]
        dur_huge = [e.dur for e in huge.trace.events if e.cat == "kernel"]
        for ds, dh in zip(dur_small, dur_huge):
            assert dh == pytest.approx(ds + 1000.0)
