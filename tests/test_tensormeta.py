"""Unit + property tests for tensor metadata."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tensormeta import TensorMeta, dtype_size, total_bytes, total_numel

shapes = st.lists(st.integers(min_value=0, max_value=64), min_size=0, max_size=4).map(tuple)


class TestDtype:
    def test_known_sizes(self):
        assert dtype_size("float32") == 4
        assert dtype_size("int64") == 8
        assert dtype_size("float16") == 2

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            dtype_size("complex128")


class TestTensorMeta:
    def test_numel_and_bytes(self):
        t = TensorMeta((4, 8), "float32")
        assert t.numel == 32
        assert t.nbytes == 128
        assert t.ndim == 2

    def test_scalar(self):
        t = TensorMeta(())
        assert t.numel == 1
        assert t.nbytes == 4

    def test_zero_dim_tensor_has_zero_bytes(self):
        assert TensorMeta((0, 5)).nbytes == 0

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError):
            TensorMeta((-1, 2))

    def test_bad_device_rejected(self):
        with pytest.raises(ValueError):
            TensorMeta((1,), device="tpu")

    def test_bad_dtype_rejected_eagerly(self):
        with pytest.raises(KeyError):
            TensorMeta((1,), dtype="bfloat64")

    def test_with_shape_preserves_dtype_device(self):
        t = TensorMeta((2, 2), "int64", "cpu").with_shape((4,))
        assert t.shape == (4,)
        assert t.dtype == "int64"
        assert t.device == "cpu"

    def test_with_device(self):
        assert TensorMeta((1,)).with_device("cpu").device == "cpu"

    def test_with_batch_rescales_leading_dim(self):
        t = TensorMeta((32, 7)).with_batch(32, 64)
        assert t.shape == (64, 7)

    def test_with_batch_leaves_weights_alone(self):
        t = TensorMeta((128, 7)).with_batch(32, 64)
        assert t.shape == (128, 7)

    @given(shapes)
    def test_numel_is_product(self, shape):
        t = TensorMeta(shape)
        expected = 1
        for d in shape:
            expected *= d
        assert t.numel == expected

    @given(shapes, st.sampled_from(["float32", "int64", "float16"]))
    def test_nbytes_consistent(self, shape, dtype):
        t = TensorMeta(shape, dtype)
        assert t.nbytes == t.numel * dtype_size(dtype)


class TestAggregates:
    def test_totals(self):
        ts = [TensorMeta((2, 2)), TensorMeta((3,), "int64")]
        assert total_numel(ts) == 7
        assert total_bytes(ts) == 16 + 24
