"""Tests for the reference-band regression harness (``repro regress``).

The load-bearing invariant: the committed band file admits the
committed results files, and any perturbation — a drifted value, an
added or dropped leaf, a missing file, a schema change — produces a
finding and a nonzero exit.
"""

import json
import math
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.regress import (
    Band,
    FINDING_DRIFT,
    FINDING_EXTRA_LEAF,
    FINDING_MISSING_FILE,
    FINDING_MISSING_LEAF,
    FINDING_SCHEMA,
    FINDING_UNBANDED_FILE,
    KIND_ABSOLUTE,
    KIND_EXACT,
    KIND_RELATIVE,
    META_KEY,
    RegressFinding,
    build_bands,
    check_results,
    classify,
    dumps_result,
    flatten,
    leaf_name,
    load_bands,
    load_result,
    result_names,
    save_bands,
    split_path,
    stamp_payload,
    unflatten,
    write_result_file,
)

REPO = Path(__file__).resolve().parent.parent
RESULTS = REPO / "results"
BANDS = RESULTS / "bands.json"


def _workdir(tmp_path):
    """A scratch copy of the committed results directory."""
    work = tmp_path / "results"
    shutil.copytree(RESULTS, work)
    return work


def _run_cli(*args, results_dir):
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro", "regress",
         "--results-dir", str(results_dir), *args],
        capture_output=True, text=True, env=env, cwd=REPO,
    )


# ---------------------------------------------------------------------------
# The committed invariant


class TestCommittedArtifacts:
    def test_bands_admit_committed_results(self):
        run = check_results(RESULTS, load_bands(BANDS))
        assert run.findings == ()
        assert run.files == len(result_names(RESULTS))
        assert run.leaves > 1000

    def test_every_results_file_is_banded(self):
        banded = set(load_bands(BANDS)["files"])
        assert banded == set(result_names(RESULTS))

    def test_committed_results_are_canonical_and_stamped(self):
        for name in result_names(RESULTS):
            path = RESULTS / f"{name}.json"
            payload = load_result(path)
            assert META_KEY in payload, f"{name} is unstamped"
            assert path.read_text(encoding="utf-8") == dumps_result(payload)

    def test_bands_file_itself_is_canonical(self):
        assert BANDS.read_text(encoding="utf-8") == dumps_result(
            load_result(BANDS)
        )

    def test_update_bands_is_idempotent(self, tmp_path):
        rebuilt = stamp_payload(build_bands(RESULTS))
        assert dumps_result(rebuilt) == BANDS.read_text(encoding="utf-8")


# ---------------------------------------------------------------------------
# Injections: every perturbation must fail the check


class TestInjections:
    def _check(self, work):
        return check_results(work, load_bands(work / "bands.json"))

    def test_perturbed_leaf_drifts(self, tmp_path):
        work = _workdir(tmp_path)
        path = work / "sweep_speedup.json"
        payload = load_result(path)
        payload["speedup"] *= 3.0
        write_result_file(path, payload)
        run = self._check(work)
        assert any(
            f.kind == FINDING_DRIFT and f.path == "speedup"
            for f in run.findings
        )
        assert run.exit_code == 1

    def test_added_leaf_is_reported(self, tmp_path):
        work = _workdir(tmp_path)
        path = work / "sweep_speedup.json"
        payload = load_result(path)
        payload["sneaky_new_metric"] = 1.0
        write_result_file(path, payload)
        run = self._check(work)
        assert any(f.kind == FINDING_EXTRA_LEAF for f in run.findings)
        assert run.exit_code == 1

    def test_removed_leaf_is_reported(self, tmp_path):
        work = _workdir(tmp_path)
        path = work / "sweep_speedup.json"
        payload = load_result(path)
        del payload["speedup"]
        write_result_file(path, payload)
        run = self._check(work)
        assert any(
            f.kind == FINDING_MISSING_LEAF and f.path == "speedup"
            for f in run.findings
        )

    def test_missing_file_is_reported(self, tmp_path):
        work = _workdir(tmp_path)
        (work / "sweep_speedup.json").unlink()
        run = self._check(work)
        assert any(
            f.kind == FINDING_MISSING_FILE and f.file == "sweep_speedup"
            for f in run.findings
        )

    def test_unbanded_file_is_reported(self, tmp_path):
        work = _workdir(tmp_path)
        write_result_file(work / "brand_new.json", {"metric": 1.0})
        run = self._check(work)
        assert any(
            f.kind == FINDING_UNBANDED_FILE and f.file == "brand_new"
            for f in run.findings
        )

    def test_schema_mismatch_is_reported(self, tmp_path):
        work = _workdir(tmp_path)
        path = work / "sweep_speedup.json"
        payload = load_result(path)
        payload[META_KEY] = {"schema": 999}
        path.write_text(dumps_result(payload), encoding="utf-8")
        run = self._check(work)
        assert any(f.kind == FINDING_SCHEMA for f in run.findings)

    def test_untouched_copy_passes(self, tmp_path):
        work = _workdir(tmp_path)
        assert self._check(work).exit_code == 0


# ---------------------------------------------------------------------------
# CLI


class TestCli:
    def test_exit_zero_on_committed_pair(self):
        proc = _run_cli(results_dir=RESULTS)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_exit_nonzero_on_drift(self, tmp_path):
        work = _workdir(tmp_path)
        path = work / "sweep_speedup.json"
        payload = load_result(path)
        payload["speedup"] *= 3.0
        write_result_file(path, payload)
        proc = _run_cli(results_dir=work)
        assert proc.returncode == 1
        assert FINDING_DRIFT in proc.stdout

    def test_json_format_carries_exit_code(self, tmp_path):
        work = _workdir(tmp_path)
        (work / "sweep_speedup.json").unlink()
        proc = _run_cli("--format=json", results_dir=work)
        report = json.loads(proc.stdout)
        assert report["exit_code"] == proc.returncode == 1
        assert any(
            f["kind"] == FINDING_MISSING_FILE for f in report["findings"]
        )

    def test_update_bands_round_trip(self, tmp_path):
        work = _workdir(tmp_path)
        (work / "bands.json").unlink()
        proc = _run_cli(results_dir=work)
        assert proc.returncode == 2  # no band file yet
        proc = _run_cli("--update-bands", results_dir=work)
        assert proc.returncode == 0, proc.stderr
        proc = _run_cli(results_dir=work)
        assert proc.returncode == 0

    def test_subset_selection(self):
        proc = _run_cli("sweep_speedup", results_dir=RESULTS)
        assert proc.returncode == 0
        assert "1 results file(s)" in proc.stdout


# ---------------------------------------------------------------------------
# Flatten / unflatten


class TestFlatten:
    def test_round_trips_every_live_results_file(self):
        for name in result_names(RESULTS):
            payload = load_result(RESULTS / f"{name}.json")
            rebuilt = unflatten(flatten(payload))
            assert rebuilt == payload, name
            assert dumps_result(rebuilt) == (
                RESULTS / f"{name}.json"
            ).read_text(encoding="utf-8"), name

    def test_lists_round_trip(self):
        payload = {"plans": [{"x": 1}, {"x": 2}], "sizes": [1, 2, 3]}
        assert unflatten(flatten(payload)) == payload

    def test_awkward_keys_round_trip(self):
        payload = {
            "a/b": 1,
            "~tilde": 2,
            "[0]": {"nested/slash~": [3, None]},
        }
        leaves = flatten(payload)
        assert unflatten(leaves) == payload
        for path in leaves:
            assert split_path(path) is not None

    def test_leaf_name_is_final_segment(self):
        payload = {"scale": {"serial_seconds": 1.0}}
        (path,) = flatten(payload)
        assert leaf_name(path) == "serial_seconds"

    def test_empty_containers_rejected(self):
        with pytest.raises(ValueError):
            flatten({"empty": {}})
        with pytest.raises(ValueError):
            flatten({"empty": []})

    @given(
        st.recursive(
            st.one_of(
                st.integers(-1000, 1000),
                st.floats(allow_nan=False, allow_infinity=False, width=32),
                st.booleans(),
                st.none(),
                st.text(max_size=8),
            ),
            lambda leaf: st.one_of(
                st.lists(leaf, min_size=1, max_size=4),
                st.dictionaries(
                    st.text(max_size=8), leaf, min_size=1, max_size=4
                ),
            ),
            max_leaves=16,
        ).filter(lambda v: isinstance(v, dict) and v)
    )
    def test_flatten_unflatten_round_trips(self, payload):
        assert unflatten(flatten(payload)) == payload


# ---------------------------------------------------------------------------
# Policies and bands


class TestPolicies:
    def test_error_metrics_get_absolute_bands(self):
        band = classify("fig9/A100/active_err", 0.031)
        assert band.kind == KIND_ABSOLUTE
        assert band.admits(0.031)
        assert not band.admits(0.31)

    def test_speedup_gets_relative_band_that_halving_escapes(self):
        band = classify("speedup", 5.5)
        assert band.kind == KIND_RELATIVE
        assert band.admits(5.5)
        assert not band.admits(5.5 / 2.0)

    def test_counts_are_exact(self):
        band = classify("scale/pruned_points", 40)
        assert band.kind == KIND_EXACT
        assert band.admits(40)
        assert not band.admits(41)

    def test_strings_and_bools_are_exact(self):
        assert classify("x/bottleneck", "embedding").admits("embedding")
        assert not classify("x/bottleneck", "embedding").admits("gemm")
        band = classify("x/meets_slo", True)
        assert band.admits(True)
        assert not band.admits(1.0)  # a bool band must not admit floats

    def test_non_finite_floats_are_exact(self):
        band = classify("x/ratio", math.inf)
        assert band.kind == KIND_EXACT

    def test_wall_clock_is_loosest(self):
        band = classify("scale/serial_seconds", 10.0)
        assert band.kind == KIND_RELATIVE
        assert band.admits(4.0)  # machine variation tolerated
        assert not band.admits(0.5)

    @given(
        st.floats(
            min_value=-1e6, max_value=1e6,
            allow_nan=False, allow_infinity=False,
        ),
        st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1, max_size=12,
        ),
    )
    def test_reference_value_is_always_inside_its_band(self, value, name):
        band = classify(f"x/{name}", value)
        assert band.admits(value)

    @given(
        st.floats(
            min_value=-1e6, max_value=1e6,
            allow_nan=False, allow_infinity=False,
        ),
        st.floats(
            min_value=-1e6, max_value=1e6,
            allow_nan=False, allow_infinity=False,
        ),
        st.floats(min_value=0.0, max_value=1e3),
    )
    def test_widening_a_band_never_flips_pass_to_fail(
        self, reference, probe, extra
    ):
        band = classify("x/some_metric", reference)
        if band.kind == KIND_EXACT:
            return
        wider = Band(
            kind=band.kind,
            lo=band.lo - extra,
            hi=band.hi + extra,
            policy=band.policy,
        )
        if band.admits(probe):
            assert wider.admits(probe)

    def test_band_dict_round_trip(self):
        band = classify("x/iteration_ms", 12.5)
        assert Band.from_dict(band.to_dict()) == band

    def test_finding_dict_round_trip(self):
        finding = RegressFinding(
            kind=FINDING_DRIFT, file="f", path="a/b", message="m"
        )
        assert RegressFinding.from_dict(finding.to_dict()) == finding
