"""Unit tests for the execution graph container and observer."""

import pytest

from repro.graph import ExecutionGraph, GraphError, Observer
from repro.ops import Add, Linear, Relu, ToDevice, View
from repro.tensormeta import TensorMeta


def small_graph():
    obs = Observer("t")
    x = obs.input(TensorMeta((8, 4), device="cpu"))
    (xg,) = obs.call(ToDevice((8, 4)), [x])
    lin = Linear(8, 4, 2)
    w = obs.input(lin.inputs[1])
    b = obs.input(lin.inputs[2])
    (y,) = obs.call(lin, [xg, w, b])
    (z,) = obs.call(Relu((8, 2)), [y])
    return obs.finish(), (x, xg, y, z)


class TestConstruction:
    def test_node_count_and_order(self):
        g, _ = small_graph()
        assert len(g) == 3
        assert [n.op_name for n in g] == ["aten::to", "aten::linear", "aten::relu"]

    def test_kernel_count(self):
        g, _ = small_graph()
        assert g.num_kernels() == 3

    def test_unknown_input_rejected(self):
        g = ExecutionGraph()
        with pytest.raises(GraphError):
            g.add_node(Relu((2,)), [99])

    def test_op_name_counts(self):
        g, _ = small_graph()
        assert g.op_name_counts()["aten::relu"] == 1


class TestDependencies:
    def test_producer_tracking(self):
        g, (x, xg, y, z) = small_graph()
        assert g.producer_of(x) is None  # graph input
        assert g.producer_of(xg) == 0
        assert g.producer_of(y) == 1

    def test_consumers(self):
        g, (x, xg, y, z) = small_graph()
        assert g.consumers_of(xg) == [1]

    def test_dependencies(self):
        g, _ = small_graph()
        relu_node = g.nodes[2]
        assert g.dependencies(relu_node) == {1}

    def test_inplace_does_not_claim_production(self):
        obs = Observer("t")
        a = obs.input(TensorMeta((4,)))
        b = obs.input(TensorMeta((4,)))
        obs.call(Add((4,)), [a, b], inplace=True)
        g = obs.finish()
        assert g.producer_of(a) is None


class TestValidation:
    def test_valid_graph_passes(self):
        g, _ = small_graph()
        g.validate()

    def test_reordered_dependency_fails(self):
        g, _ = small_graph()
        nodes = list(g.nodes)
        broken = g.replace_nodes([nodes[1], nodes[0], nodes[2]])
        with pytest.raises(GraphError):
            broken.validate()

    def test_duplicate_node_ids_fail(self):
        g, _ = small_graph()
        nodes = list(g.nodes)
        broken = g.replace_nodes([nodes[0], nodes[0]])
        with pytest.raises(GraphError):
            broken.validate()


class TestObserver:
    def test_strict_shape_check(self):
        obs = Observer("t")
        x = obs.input(TensorMeta((8, 5)))
        with pytest.raises(GraphError, match="shape"):
            obs.call(Relu((8, 4)), [x])

    def test_lenient_mode(self):
        obs = Observer("t", strict_shapes=False)
        x = obs.input(TensorMeta((8, 5)))
        obs.call(Relu((8, 4)), [x])  # allowed

    def test_tensor_lookup(self):
        g, (x, *_rest) = small_graph()
        assert g.tensor(x).shape == (8, 4)
        with pytest.raises(GraphError):
            g.tensor(12345)

    def test_node_lookup(self):
        g, _ = small_graph()
        assert g.node(0).op_name == "aten::to"
        with pytest.raises(GraphError):
            g.node(999)


class TestMapTensors:
    def test_map_preserves_structure(self):
        g, _ = small_graph()
        mapped = g.map_tensors(lambda t: t.with_batch(8, 16))
        assert len(mapped) == len(g)
        assert mapped.tensor(0).shape == (16, 4)
