"""Unit tests for error metrics (GMAE & friends)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import (
    ErrorStats,
    absolute_relative_errors,
    geomean,
    gmae,
    mean_absolute_relative_error,
    relative_error,
    std_absolute_relative_error,
)


class TestRelativeError:
    def test_signed(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        assert relative_error(9.0, 10.0) == pytest.approx(-0.1)

    def test_zero_actual_rejected(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)

    def test_exact_prediction(self):
        assert relative_error(5.0, 5.0) == 0.0


class TestGmae:
    def test_single_sample(self):
        assert gmae([11.0], [10.0]) == pytest.approx(0.1)

    def test_is_geometric_mean(self):
        # errors 10% and 40% -> sqrt(0.1 * 0.4) = 0.2
        value = gmae([1.1, 1.4], [1.0, 1.0])
        assert value == pytest.approx(math.sqrt(0.04), rel=1e-9)

    def test_under_and_over_prediction_symmetric(self):
        assert gmae([0.9], [1.0]) == pytest.approx(gmae([1.1], [1.0]))

    def test_perfect_prediction_does_not_crash(self):
        assert gmae([1.0, 2.0], [1.0, 2.0]) < 1e-6

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gmae([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            gmae([1.0], [1.0, 2.0])

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=1e6),
            min_size=1,
            max_size=30,
        )
    )
    def test_gmae_below_mean_error(self, actuals):
        """AM-GM: the geometric mean never exceeds the arithmetic mean."""
        predicted = [a * 1.25 for a in actuals]
        g = gmae(predicted, actuals)
        m = mean_absolute_relative_error(predicted, actuals)
        assert g <= m + 1e-9


class TestStats:
    def test_mean(self):
        assert mean_absolute_relative_error([1.1, 0.8], [1.0, 1.0]) == pytest.approx(0.15)

    def test_std_zero_for_constant_error(self):
        assert std_absolute_relative_error([2.0, 4.0], [1.0, 2.0]) == pytest.approx(0.0)

    def test_error_stats_bundle(self):
        stats = ErrorStats.from_samples([1.1, 1.2], [1.0, 1.0])
        assert stats.mean == pytest.approx(0.15)
        assert stats.gmae == pytest.approx(math.sqrt(0.1 * 0.2))
        assert "%" in stats.as_percentages()

    def test_absolute_errors_list(self):
        errs = absolute_relative_errors([2.0, 0.5], [1.0, 1.0])
        assert errs == [1.0, 0.5]


class TestGeomean:
    def test_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    @given(st.lists(st.floats(min_value=1e-3, max_value=1e3), min_size=1, max_size=20))
    def test_bounded_by_min_max(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9
