"""Integration tests across the full pipeline (Figure 3's two tracks)."""

import pytest

from repro.baselines import predict_kernel_only_us
from repro.e2e import predict_e2e
from repro.graph import graph_from_dict, graph_to_dict
from repro.metrics import geomean
from repro.models import build_model
from repro.overheads import OverheadDatabase
from repro.trace import trace_breakdown


class TestAnalysisThenPrediction:
    """Analysis track feeds the prediction track end to end."""

    def test_predict_from_serialized_graph(
        self, device, dlrm_graph, registry, overhead_db
    ):
        """Prediction works on a graph round-tripped through JSON —
        the 'subsequent models skip the hardware' workflow."""
        restored = graph_from_dict(graph_to_dict(dlrm_graph))
        direct = predict_e2e(dlrm_graph, registry, overhead_db)
        via_json = predict_e2e(restored, registry, overhead_db)
        assert via_json.total_us == pytest.approx(direct.total_us)

    def test_three_dlrms_geomean_error(self, device, registry):
        """Mini Table V: geomean E2E error across variants and batches."""
        errors = []
        for name in ("DLRM_default", "DLRM_DDP"):
            for batch in (256, 1024):
                graph = build_model(name, batch)
                prof = device.run(
                    graph, iterations=6, batch_size=batch,
                    with_profiler=True, warmup=1,
                )
                truth = device.run(graph, iterations=6, warmup=1)
                db = OverheadDatabase.from_trace(prof.trace)
                pred = predict_e2e(graph, registry, db)
                errors.append(
                    abs(pred.total_us - truth.mean_e2e_us) / truth.mean_e2e_us
                )
        assert geomean(errors) < 0.15

    def test_shared_overheads_small_penalty(self, device, registry):
        """The paper's shared-overhead result: small accuracy cost."""
        names = ("DLRM_default", "DLRM_DDP")
        traces, graphs, truths = [], {}, {}
        for name in names:
            graph = build_model(name, 512)
            graphs[name] = graph
            traces.append(
                device.run(graph, iterations=6, with_profiler=True, warmup=1).trace
            )
            truths[name] = device.run(graph, iterations=6, warmup=1).mean_e2e_us
        shared = OverheadDatabase.shared(traces)
        indiv_errs, shared_errs = [], []
        for trace, name in zip(traces, names):
            indiv = OverheadDatabase.from_trace(trace)
            p_i = predict_e2e(graphs[name], registry, indiv)
            p_s = predict_e2e(graphs[name], registry, shared)
            indiv_errs.append(abs(p_i.total_us - truths[name]) / truths[name])
            shared_errs.append(abs(p_s.total_us - truths[name]) / truths[name])
        # Shared DB costs at most a handful of points of extra error.
        assert geomean(shared_errs) < geomean(indiv_errs) + 0.06

    def test_breakdown_agrees_with_prediction_shape(
        self, device, dlrm_graph, registry, overhead_db
    ):
        """Predicted per-op active time ranks ops like the trace does."""
        prof = device.run(
            dlrm_graph, iterations=6, batch_size=512,
            with_profiler=True, warmup=1,
        )
        measured = trace_breakdown(prof.trace).per_op_device_us
        predicted = predict_e2e(dlrm_graph, registry, overhead_db).per_op_active_us
        top_measured = max(measured, key=measured.get)
        top_predicted = max(predicted, key=predicted.get)
        assert top_measured == top_predicted

    def test_cross_gpu_prediction(self, registry):
        """Build assets for another GPU and predict there too."""
        from repro.hardware import TITAN_XP
        from repro.perfmodels import build_perf_models
        from repro.simulator import SimulatedDevice
        from tests.conftest import TINY_SPACE

        device = SimulatedDevice(TITAN_XP, seed=21)
        xp_registry, _ = build_perf_models(
            device, microbench_scale=0.2, epochs=120, space=TINY_SPACE, seed=2
        )
        graph = build_model("DLRM_default", 512)
        prof = device.run(graph, iterations=6, with_profiler=True, warmup=1)
        truth = device.run(graph, iterations=6, warmup=1)
        db = OverheadDatabase.from_trace(prof.trace)
        pred = predict_e2e(graph, xp_registry, db)
        err = abs(pred.total_us - truth.mean_e2e_us) / truth.mean_e2e_us
        assert err < 0.25

    def test_prediction_is_fast(self, dlrm_graph, registry, overhead_db):
        """'Our performance model ... finishes a single E2E prediction
        in a few seconds' — ours should be well under one."""
        import time

        start = time.perf_counter()
        predict_e2e(dlrm_graph, registry, overhead_db)
        assert time.perf_counter() - start < 2.0

    def test_kernel_only_vs_e2e_across_batches(self, device, registry):
        """Kernel-only degrades as utilization drops (small batch)."""
        gaps = []
        for batch in (256, 2048):
            graph = build_model("DLRM_default", batch)
            prof = device.run(graph, iterations=5, with_profiler=True, warmup=1)
            truth = device.run(graph, iterations=5, warmup=1)
            db = OverheadDatabase.from_trace(prof.trace)
            ko = predict_kernel_only_us(graph, registry)
            gaps.append((truth.mean_e2e_us - ko) / truth.mean_e2e_us)
        assert gaps[0] > gaps[1]  # bigger gap at smaller batch
