"""Property + unit tests for the overlap-aware heterogeneous engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import TESLA_V100, TITAN_XP
from repro.models.dlrm import DLRM_DEFAULT
from repro.multigpu import (
    NVLINK,
    PCIE_FABRIC,
    CollectiveModel,
    CollectivePhase,
    GroundTruthCollectives,
    MultiGpuPlan,
    MultiGpuResult,
    MultiGpuSimulator,
    build_multi_gpu_dlrm_plan,
    predict_multi_gpu,
    schedule_iteration,
)

durations = st.floats(min_value=0.0, max_value=1e5,
                      allow_nan=False, allow_infinity=False)


@st.composite
def workloads(draw):
    """Random (compute matrix, resolved collectives) pairs."""
    num_phases = draw(st.integers(min_value=1, max_value=6))
    num_devices = draw(st.integers(min_value=1, max_value=5))
    compute = [
        [draw(durations) for _ in range(num_devices)]
        for _ in range(num_phases)
    ]
    collectives = []
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        produced_by = draw(st.integers(min_value=0, max_value=num_phases - 1))
        consumed_by = draw(
            st.integers(min_value=produced_by + 1, max_value=num_phases)
        )
        collectives.append((produced_by, consumed_by, draw(durations)))
    return compute, collectives


class TestScheduleProperties:
    """The satellite invariants, fuzzed over random workloads."""

    @settings(max_examples=200, deadline=None)
    @given(work=workloads())
    def test_sync_reproduces_legacy_formula_exactly(self, work):
        compute, collectives = work
        schedule = schedule_iteration(compute, collectives, overlap="none")
        legacy = sum(max(phase) for phase in compute) + sum(
            duration for _, _, duration in collectives
        )
        assert schedule.iteration_us == legacy  # bit-identical, not approx
        assert schedule.exposed_comm_us == pytest.approx(
            sum(duration for _, _, duration in collectives), rel=1e-9, abs=1e-6
        )

    @settings(max_examples=200, deadline=None)
    @given(work=workloads())
    def test_overlap_bounded_by_sync_and_lower_bounds(self, work):
        compute, collectives = work
        sync = schedule_iteration(compute, collectives, overlap="none")
        over = schedule_iteration(compute, collectives, overlap="full")
        # Overlap can only help: never slower than the barrier schedule.
        assert over.iteration_us <= sync.iteration_us * (1 + 1e-9) + 1e-6
        # ... and never faster than physics: each device still runs all
        # of its compute, and collectives serialize on the fabric.
        slowest_device = max(
            sum(phase[d] for phase in compute)
            for d in range(len(compute[0]))
        )
        total_comm = sum(duration for _, _, duration in collectives)
        lower = max(slowest_device, total_comm)
        assert over.iteration_us >= lower * (1 - 1e-9) - 1e-6
        # Exposed communication is between 0 and the full collective time.
        assert -1e-6 <= over.exposed_comm_us
        assert over.exposed_comm_us <= total_comm * (1 + 1e-9) + 1e-6
        assert over.hidden_comm_us >= -1e-6

    @settings(max_examples=100, deadline=None)
    @given(work=workloads())
    def test_collectives_serialize_and_respect_producers(self, work):
        compute, collectives = work
        over = schedule_iteration(compute, collectives, overlap="full")
        for c, (produced_by, _, duration) in enumerate(collectives):
            start = over.collective_start_us[c]
            end = over.collective_end_us[c]
            assert end == pytest.approx(start + duration, rel=1e-9, abs=1e-6)
            # A collective cannot start before its slowest producer.
            assert start >= max(over.phase_end_us[produced_by]) - 1e-6

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            schedule_iteration([[1.0]], [], overlap="half")
        with pytest.raises(ValueError, match="consumed_by"):
            schedule_iteration([[1.0], [1.0]], [(1, 1, 5.0)])
        with pytest.raises(ValueError, match="produced_by"):
            schedule_iteration([[1.0]], [(3, 4, 5.0)])
        with pytest.raises(ValueError, match="devices"):
            schedule_iteration([[1.0], [1.0, 2.0]], [])


class TestPlanEdges:
    def test_default_edges_are_barriers(self):
        plan = build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 2)
        assert plan.overlap == "none"
        assert [plan.resolve_edge(i) for i in range(3)] == [
            (0, 1), (1, 2), (2, 3),
        ]

    def test_overlap_plan_has_hiding_edges(self):
        plan = build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 2, overlap="full")
        assert plan.overlap == "full"
        assert plan.num_phases == 6
        edges = [plan.resolve_edge(i) for i in range(3)]
        assert edges == [(0, 2), (2, 4), (3, 5)]
        # Every edge skips at least one phase — that's the overlap window.
        assert all(consumer - producer > 1 for producer, consumer in edges)
        for phase in plan.compute_phases:
            for segment in phase:
                segment.validate()

    def test_bad_edges_rejected(self):
        with pytest.raises(ValueError):
            CollectivePhase("all2all", 1.0, produced_by=2, consumed_by=1)
        base = build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 2)
        with pytest.raises(ValueError, match="consumed_by"):
            MultiGpuPlan(
                num_devices=2,
                compute_phases=base.compute_phases,
                collectives=[
                    CollectivePhase("all2all", 1.0, produced_by=0,
                                    consumed_by=9)
                ],
            )
        with pytest.raises(ValueError, match="overlap"):
            MultiGpuPlan(
                num_devices=2,
                compute_phases=base.compute_phases,
                collectives=[],
                overlap="sometimes",
            )


class TestSimulatorOverlap:
    @pytest.fixture(scope="class")
    def sync_plan(self):
        return build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 4)

    @pytest.fixture(scope="class")
    def overlap_plan(self):
        return build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 4, overlap="full")

    def test_sync_run_matches_legacy_arithmetic(self, sync_plan):
        result = MultiGpuSimulator(TESLA_V100, NVLINK, seed=9).run(sync_plan, 2)
        assert result.iteration_us == (
            sum(result.phase_us) + sum(result.collective_us)
        )
        assert result.overlap == "none"
        assert result.exposed_comm_us == pytest.approx(
            result.communication_us
        )

    def test_overlap_no_slower_same_plan(self, overlap_plan):
        sim = MultiGpuSimulator(TESLA_V100, PCIE_FABRIC, seed=9)
        over = sim.run(overlap_plan, 2)
        sync = sim.run(overlap_plan, 2, overlap="none")
        assert over.iteration_us <= sync.iteration_us
        assert over.hidden_comm_us > 0  # PCIe DLRM hides real comm time
        assert over.communication_fraction <= sync.communication_fraction

    def test_overlap_beats_default_sync_plan_on_pcie(
        self, sync_plan, overlap_plan
    ):
        sim = MultiGpuSimulator(TESLA_V100, PCIE_FABRIC, seed=9)
        assert (
            sim.run(overlap_plan, 2).iteration_us
            < sim.run(sync_plan, 2).iteration_us
        )

    def test_homogeneous_fleet_special_case(self, sync_plan):
        """A per-device list of identical specs is exactly the scalar path."""
        scalar = MultiGpuSimulator(TESLA_V100, NVLINK, seed=9).run(sync_plan, 2)
        listed = MultiGpuSimulator(
            [TESLA_V100] * 4, NVLINK, seed=9
        ).run(sync_plan, 2)
        assert listed.iteration_us == scalar.iteration_us
        assert listed.per_device_phase_us == scalar.per_device_phase_us
        assert listed.collective_us == scalar.collective_us

    def test_heterogeneous_fleet_straggles(self, sync_plan):
        homo = MultiGpuSimulator(TESLA_V100, NVLINK, seed=9).run(sync_plan, 2)
        het = MultiGpuSimulator(
            [TESLA_V100, TESLA_V100, TITAN_XP, TITAN_XP], NVLINK, seed=9
        ).run(sync_plan, 2)
        assert het.iteration_us > homo.iteration_us
        # Hardware skew shows up as straggler loss even though the
        # round-robin sharding is balanced.
        assert het.straggler_loss_us > homo.straggler_loss_us

    def test_fleet_length_validated(self, sync_plan):
        sim = MultiGpuSimulator([TESLA_V100, TITAN_XP], NVLINK, seed=1)
        with pytest.raises(ValueError, match="devices"):
            sim.run(sync_plan, 1)


class TestResultSemantics:
    def test_single_device_phase_has_no_straggler_loss(self):
        result = MultiGpuResult(
            iteration_us=10.0,
            phase_us=[4.0, 6.0],
            collective_us=[],
            per_device_phase_us=[[4.0], [6.0]],
        )
        assert result.straggler_loss_us == 0.0

    def test_straggler_loss_is_max_minus_mean(self):
        result = MultiGpuResult(
            iteration_us=10.0,
            phase_us=[4.0],
            collective_us=[],
            per_device_phase_us=[[2.0, 4.0]],
        )
        assert result.straggler_loss_us == pytest.approx(1.0)

    def test_communication_fraction_uses_exposed_time(self):
        hidden = MultiGpuResult(
            iteration_us=100.0,
            phase_us=[100.0],
            collective_us=[30.0],
            per_device_phase_us=[[100.0]],
            overlap="full",
            exposed_comm_us=0.0,
        )
        assert hidden.communication_fraction == 0.0
        assert hidden.hidden_comm_us == pytest.approx(30.0)
        exposed = MultiGpuResult(
            iteration_us=100.0,
            phase_us=[70.0],
            collective_us=[30.0],
            per_device_phase_us=[[70.0]],
        )
        assert exposed.communication_fraction == pytest.approx(0.3)

    def test_zero_iteration_fraction_is_zero(self):
        empty = MultiGpuResult(
            iteration_us=0.0, phase_us=[], collective_us=[],
            per_device_phase_us=[],
        )
        assert empty.communication_fraction == 0.0


class TestPredictorMirrorsSimulator:
    @pytest.fixture(scope="class")
    def collective_model(self):
        return CollectiveModel.calibrate(
            GroundTruthCollectives(PCIE_FABRIC), 4
        )

    def test_sync_prediction_unchanged_by_engine(
        self, registry, overhead_db, collective_model
    ):
        """overlap="none" is the legacy sum-of-gates arithmetic."""
        plan = build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 4)
        pred = predict_multi_gpu(plan, registry, overhead_db, collective_model)
        assert pred.iteration_us == (
            sum(pred.phase_us) + sum(pred.collective_us)
        )

    def test_overlap_prediction_tracks_overlap_simulation(
        self, registry, overhead_db, collective_model
    ):
        plan = build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 4, overlap="full")
        pred = predict_multi_gpu(plan, registry, overhead_db, collective_model)
        truth = MultiGpuSimulator(TESLA_V100, PCIE_FABRIC, seed=9).run(plan, 2)
        err = abs(pred.iteration_us - truth.iteration_us) / truth.iteration_us
        assert err < 0.25  # the existing multi-GPU tolerance
        assert pred.overlap == truth.overlap == "full"

    def test_homogeneous_registry_list_is_special_case(
        self, registry, overhead_db, collective_model
    ):
        plan = build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 4, overlap="full")
        scalar = predict_multi_gpu(
            plan, registry, overhead_db, collective_model
        )
        listed = predict_multi_gpu(
            plan, [registry] * 4, [overhead_db] * 4, collective_model
        )
        assert listed.iteration_us == scalar.iteration_us
        assert listed.per_device_phase_us == scalar.per_device_phase_us

    def test_registry_list_length_validated(
        self, registry, overhead_db, collective_model
    ):
        plan = build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 4)
        with pytest.raises(ValueError, match="registries"):
            predict_multi_gpu(
                plan, [registry] * 2, overhead_db, collective_model
            )

    def test_overlap_override_param(
        self, registry, overhead_db, collective_model
    ):
        plan = build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 4, overlap="full")
        sync = predict_multi_gpu(
            plan, registry, overhead_db, collective_model, overlap="none"
        )
        over = predict_multi_gpu(plan, registry, overhead_db, collective_model)
        assert over.iteration_us <= sync.iteration_us
        assert sync.overlap == "none"


class TestShardingUnderOverlap:
    def test_rebalance_under_overlap_beats_round_robin_or_ties(
        self, registry, overhead_db
    ):
        from repro.codesign import rebalance_under_overlap

        model = CollectiveModel.calibrate(GroundTruthCollectives(NVLINK), 2)
        assignment, best = rebalance_under_overlap(
            DLRM_DEFAULT, 1024, 2, registry, overhead_db, model
        )
        round_robin = predict_multi_gpu(
            build_multi_gpu_dlrm_plan(DLRM_DEFAULT, 1024, 2, overlap="full"),
            registry, overhead_db, model,
        )
        assert best.iteration_us <= round_robin.iteration_us
        covered = sorted(i for dev in assignment for i in dev)
        assert covered == list(range(DLRM_DEFAULT.num_tables))

    def test_weighted_greedy_loads_fast_device_more(self, registry):
        from repro.codesign import TableSpec, greedy_balance

        tables = [
            TableSpec(rows=500_000, dim=64, lookups=32) for _ in range(8)
        ]
        plan = greedy_balance(
            tables, 2, 1024, registry, device_weights=[1.0, 0.25]
        )
        # The 4x-faster device should hold more tables.
        assert len(plan.assignment[0]) > len(plan.assignment[1])
        even = greedy_balance(tables, 2, 1024, registry)
        assert len(even.assignment[0]) == len(even.assignment[1])

    def test_bad_weights_rejected(self, registry):
        from repro.codesign import TableSpec, greedy_balance

        tables = [TableSpec(rows=1000, dim=64, lookups=4)]
        with pytest.raises(ValueError, match="weights"):
            greedy_balance(tables, 2, 64, registry, device_weights=[1.0])
        with pytest.raises(ValueError, match="positive"):
            greedy_balance(tables, 2, 64, registry,
                           device_weights=[1.0, 0.0])
