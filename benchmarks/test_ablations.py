"""Ablations on the design choices DESIGN.md calls out.

1. Enhanced vs plain embedding model inside the E2E prediction.
2. Flat 10 µs T4 (paper) vs trace-measured T4 means in Algorithm 1.
3. Algorithm 1's launch-overlap term (``cpu + T4/2``) vs none.
4. Stream parallelization what-if on independent branches.
"""

from __future__ import annotations

import pytest

from benchmarks.assets import (
    get_device,
    get_graph,
    get_overheads,
    get_registry,
    get_truth,
    write_result,
)
from repro.e2e import predict_e2e
from repro.graph.transforms import parallelize_independent_branches
from repro.microbench import measure_peaks
from repro.perfmodels import (
    EnhancedEmbeddingModel,
    PlainEmbeddingModel,
    build_perf_models,
)
from repro.simulator.host import T4


def _registry_with_embedding(gpu_name: str, enhanced: bool):
    device = get_device(gpu_name)
    registry, _ = get_registry(gpu_name)
    peaks = measure_peaks(device)
    cls = EnhancedEmbeddingModel if enhanced else PlainEmbeddingModel
    # Re-register only the embedding models on top of the shared base.
    import copy

    clone = copy.copy(registry)
    clone._models = dict(registry._models)
    clone.register(cls(device.gpu, peaks, backward=False))
    clone.register(cls(device.gpu, peaks, backward=True))
    return clone


@pytest.fixture(scope="module")
def ablation_results():
    gpu = "V100"
    model, batch = "DLRM_DDP", 2048  # the most lookup-dominated case
    graph = get_graph(model, batch)
    truth = get_truth(gpu, model, batch)
    db = get_overheads(gpu, model, batch)

    rows = {}

    # 1. Embedding model variant.
    for enhanced in (False, True):
        registry = _registry_with_embedding(gpu, enhanced)
        pred = predict_e2e(graph, registry, db)
        key = "embedding_enhanced" if enhanced else "embedding_plain"
        rows[key] = abs(pred.active_us - truth.mean_gpu_active_us) / \
            truth.mean_gpu_active_us

    # 2. T4 approximation.
    registry, _ = get_registry(gpu)
    measured_t4 = db.mean_us("aten::linear", T4)
    for t4, key in ((10.0, "t4_flat10"), (measured_t4, "t4_measured")):
        pred = predict_e2e(graph, registry, db, t4_us=t4)
        rows[key] = abs(pred.total_us - truth.mean_e2e_us) / truth.mean_e2e_us

    # 3. Launch-overlap term.
    pred_with = predict_e2e(graph, registry, db)
    pred_without = predict_e2e(graph, registry, db, t4_us=0.0)
    rows["launch_term_on"] = abs(pred_with.total_us - truth.mean_e2e_us) / \
        truth.mean_e2e_us
    rows["launch_term_off"] = abs(pred_without.total_us - truth.mean_e2e_us) / \
        truth.mean_e2e_us

    # 4. Stream parallelization what-if.
    parallel = parallelize_independent_branches(graph, 2)
    rows["parallel_speedup"] = (
        predict_e2e(graph, registry, db).total_us
        / predict_e2e(parallel, registry, db).total_us
    )

    write_result("ablations", rows)
    print("\nAblations (DLRM_DDP @ 2048, V100):")
    for key, value in rows.items():
        print(f"  {key:22s} {value:8.3f}")
    return rows


def test_ablation_enhanced_embedding_helps(benchmark, ablation_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert (
        ablation_results["embedding_enhanced"]
        <= ablation_results["embedding_plain"] + 0.02
    )


def test_ablation_flat_t4_is_adequate(benchmark, ablation_results):
    """The paper's 10 µs T4 shortcut costs little accuracy."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert abs(
        ablation_results["t4_flat10"] - ablation_results["t4_measured"]
    ) < 0.08


def test_ablation_launch_term_matters(benchmark, ablation_results):
    """Dropping the host-launch charge degrades (or never helps) E2E."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert (
        ablation_results["launch_term_on"]
        <= ablation_results["launch_term_off"] + 0.02
    )


def test_ablation_parallelization_no_slowdown(benchmark, ablation_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert ablation_results["parallel_speedup"] >= 0.999
