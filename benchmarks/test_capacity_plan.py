"""Extension experiment — QPS/SLO-driven serving capacity planning.

The north-star workload: serve DLRM inference to "heavy traffic from
millions of users".  The planner sweeps per-replica batch size ×
replica count × replica shape (single-GPU and 2-GPU sharded) over the
forward-only inference graphs and ranks the configurations against a
100k-QPS / 2 ms-p99 target on a simulated A100 fleet.

Asserted shape: at least one configuration meets the SLO; feasible
plans rank strictly ahead of best-effort ones and are cost-sorted;
inference service time is strictly below the train-mode iteration time
at every batch size.  The ranked table is recorded under
``results/capacity_plan.json`` (deterministic run-to-run: every asset
seed is derived via crc32, not ``hash()``).
"""

from __future__ import annotations

import json
import math
import os

import pytest

from benchmarks.assets import (
    RESULTS_DIR,
    get_overheads,
    get_registry,
    write_result,
)
from repro.capacity import (
    CandidateFleet,
    CapacityPlanner,
    ServingTarget,
)
from repro.e2e import predict_e2e
from repro.models import MODE_INFERENCE, build_model
from repro.models.dlrm import DLRM_DEFAULT
from repro.multigpu import NVLINK, CollectiveModel, GroundTruthCollectives
from repro.sweep import SweepEngine

_GPU = "A100"
_QPS = 100_000.0
_SLO_MS = 2.0
_BATCHES = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@pytest.fixture(scope="module")
def ranked_plans():
    registry, _ = get_registry(_GPU)
    overheads = get_overheads(_GPU, "DLRM_default", 2048)
    engine = SweepEngine(
        registries={_GPU: registry},
        overhead_dbs={"individual": overheads},
    )
    target = ServingTarget.from_ms(_QPS, _SLO_MS)
    planner = CapacityPlanner(engine, target)
    plans = planner.plan_dlrm(
        DLRM_DEFAULT,
        _BATCHES,
        fleets=[
            CandidateFleet(_GPU, gpus_per_replica=1, max_replicas=512),
            CandidateFleet(_GPU, gpus_per_replica=2, max_replicas=256),
        ],
        collective_model_for=lambda n: CollectiveModel.calibrate(
            GroundTruthCollectives(NVLINK), n
        ),
    )
    write_result(
        "capacity_plan",
        {
            "target": {
                "qps": _QPS,
                "latency_slo_ms": _SLO_MS,
                "percentile": target.percentile,
            },
            "gpu": _GPU,
            "batch_sizes": list(_BATCHES),
            "plans": [p.to_dict() for p in plans],
        },
    )
    return plans


class TestCapacityPlan:
    def test_a_plan_meets_the_slo(self, ranked_plans):
        best = ranked_plans[0]
        assert best.meets_slo, "no configuration met 2 ms p99 at 100k QPS"
        assert best.latency_us <= _SLO_MS * 1e3
        assert best.utilization <= 0.85
        assert best.throughput_qps >= _QPS

    def test_ranking_is_feasible_first_then_cost(self, ranked_plans):
        feasibility = [p.meets_slo for p in ranked_plans]
        first_infeasible = (
            feasibility.index(False) if False in feasibility
            else len(feasibility)
        )
        assert all(feasibility[:first_infeasible])
        assert not any(feasibility[first_infeasible:])
        feasible = ranked_plans[:first_infeasible]
        costs = [p.cost_per_hour for p in feasible]
        assert costs == sorted(costs)

    def test_saturated_plans_are_flagged_infeasible(self, ranked_plans):
        for plan in ranked_plans:
            if math.isinf(plan.latency_us):
                assert not plan.meets_slo

    def test_inference_strictly_cheaper_than_training(self):
        registry, _ = get_registry(_GPU)
        overheads = get_overheads(_GPU, "DLRM_default", 2048)
        for batch in (64, 256):
            train = predict_e2e(
                build_model("DLRM_default", batch), registry, overheads
            )
            infer = predict_e2e(
                build_model("DLRM_default", batch, mode=MODE_INFERENCE),
                registry, overheads,
            )
            assert infer.total_us < train.total_us

    def test_results_table_written(self, ranked_plans):
        path = os.path.join(RESULTS_DIR, "capacity_plan.json")
        with open(path, encoding="utf-8") as f:
            payload = json.load(f)
        assert payload["target"]["qps"] == _QPS
        assert len(payload["plans"]) == len(ranked_plans)
        assert payload["plans"][0]["meets_slo"] is True
