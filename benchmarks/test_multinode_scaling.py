"""Extension experiment — hierarchical multi-node fleet scaling.

Companion to ``test_overlap_scaling.py`` one level up the hierarchy:
the same 8-GPU budget racked as 1x8 / 2x4 / 4x2 / 8x1 over NVLink +
100GbE or HDR InfiniBand.  Asserted shape: a flat single-node topology
is bit-identical to the flat fabric path (prediction and simulation);
prediction error vs. the hierarchical simulator stays within the
multi-GPU tolerance; the single NVLink box is the fastest way to rack
the budget; and the capacity planner finds a *feasible* multi-node
serving plan whose reported bottleneck is the cross-node fabric (not
compute).  Everything lands deterministically in
``results/multinode_scaling.json``.
"""

from __future__ import annotations

import pytest

from benchmarks.assets import get_overheads, get_registry, write_result
from repro.hardware import TESLA_V100
from repro.capacity import CandidateFleet, CapacityPlanner, ServingTarget
from repro.models import MODE_INFERENCE
from repro.models.dlrm import DLRM_CONFIGS
from repro.multigpu import (
    ETHERNET_100G,
    INFINIBAND_HDR,
    NVLINK,
    CollectiveModel,
    GroundTruthCollectives,
    GroundTruthTopologyCollectives,
    MultiGpuSimulator,
    Topology,
    TopologyCollectiveModel,
    build_multi_gpu_dlrm_plan,
    predict_multi_gpu,
)
from repro.sweep import SweepEngine

_CONFIG = DLRM_CONFIGS["DLRM_MLPerf"]
_BATCH = 4096
_SHAPES = ((1, 8), (2, 4), (4, 2), (8, 1))
_TOLERANCE = 0.25  # the existing multi-GPU prediction tolerance


@pytest.fixture(scope="module")
def multinode_rows():
    registry, _ = get_registry("V100")
    overheads = get_overheads("V100", "DLRM_MLPerf", _BATCH)

    rows: dict = {"scaling": {}, "capacity": {}}
    for network in (ETHERNET_100G, INFINIBAND_HDR):
        for nodes, per_node in _SHAPES:
            topology = Topology(nodes, per_node, intra=NVLINK, inter=network)
            model = TopologyCollectiveModel.calibrate(
                GroundTruthTopologyCollectives(topology)
            )
            plan = build_multi_gpu_dlrm_plan(
                _CONFIG, _BATCH, topology.num_devices,
                overlap="full", mode=MODE_INFERENCE,
            )
            pred = predict_multi_gpu(plan, registry, overheads, model)
            truth = MultiGpuSimulator(TESLA_V100, topology, seed=5).run(
                plan, 3
            )
            rows["scaling"][f"{network.name}_{nodes}x{per_node}"] = {
                "nodes": nodes,
                "gpus_per_node": per_node,
                "network": network.name,
                "pred_us": pred.iteration_us,
                "true_us": truth.iteration_us,
                "comm_us_by_channel": dict(pred.comm_us_by_channel),
                "exposed_comm_us": pred.exposed_comm_us,
                "bottleneck": pred.bottleneck,
                "true_bottleneck": truth.bottleneck,
                "err": (pred.iteration_us - truth.iteration_us)
                / truth.iteration_us,
            }

    # The acceptance experiment: a QPS/p99 search over 2-node replica
    # shapes must find a *feasible* plan bound by the cross-node fabric.
    engine = SweepEngine(
        registries={"V100": registry},
        overhead_dbs={"individual": overheads},
    )
    target = ServingTarget.from_ms(qps=400_000, latency_slo_ms=40.0)
    planner = CapacityPlanner(engine, target)
    plans = planner.plan_dlrm(
        _CONFIG, (4096, 8192),
        fleets=[
            CandidateFleet("V100", gpus_per_replica=8, nodes=2,
                           max_replicas=64),
        ],
        topology_model_for=lambda topo: TopologyCollectiveModel.calibrate(
            GroundTruthTopologyCollectives(topo)
        ),
    )
    rows["capacity"] = {
        "target_qps": target.qps,
        "slo_ms": target.latency_slo_us / 1e3,
        "plans": [p.to_dict() for p in plans],
    }
    write_result("multinode_scaling", rows)
    print("\nMulti-node scaling (DLRM_MLPerf serving @ 4096, 8 GPUs):")
    for key, row in rows["scaling"].items():
        print(
            f"  {key:16s} pred={row['pred_us'] / 1e3:7.3f}ms "
            f"true={row['true_us'] / 1e3:7.3f}ms "
            f"bound={row['bottleneck']:8s} err={row['err']:+6.1%}"
        )
    return rows


def test_flat_topology_is_bit_identical_to_flat_path(benchmark):
    """1 node x N GPUs must equal the flat engine bit for bit."""
    registry, _ = get_registry("V100")
    overheads = get_overheads("V100", "DLRM_MLPerf", _BATCH)
    plan = build_multi_gpu_dlrm_plan(
        _CONFIG, _BATCH, 8, overlap="full", mode=MODE_INFERENCE
    )
    flat_model = CollectiveModel.calibrate(GroundTruthCollectives(NVLINK), 8)
    topo_model = TopologyCollectiveModel.calibrate(
        GroundTruthTopologyCollectives(Topology.flat(8, NVLINK))
    )
    flat_pred = predict_multi_gpu(plan, registry, overheads, flat_model)
    topo_pred = benchmark(
        lambda: predict_multi_gpu(plan, registry, overheads, topo_model)
    )
    assert topo_pred.iteration_us == flat_pred.iteration_us
    assert topo_pred.collective_us == flat_pred.collective_us
    flat_sim = MultiGpuSimulator(TESLA_V100, NVLINK, seed=5).run(plan, 2)
    topo_sim = MultiGpuSimulator(
        TESLA_V100, Topology.flat(8, NVLINK), seed=5
    ).run(plan, 2)
    assert topo_sim.iteration_us == flat_sim.iteration_us
    assert topo_sim.collective_us == flat_sim.collective_us


def test_single_node_is_fastest_rack_shape(benchmark, multinode_rows):
    """Crossing nodes can only add cost: the NVLink box wins outright."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for network in ("100GbE", "IB-HDR"):
        flat = multinode_rows["scaling"][f"{network}_1x8"]
        assert flat["bottleneck"] == "compute"
        for nodes, per_node in _SHAPES[1:]:
            row = multinode_rows["scaling"][f"{network}_{nodes}x{per_node}"]
            assert row["pred_us"] > flat["pred_us"], (network, nodes)
            # Cross-node traffic exists on every multi-node shape.
            assert row["comm_us_by_channel"].get("inter", 0.0) > 0.0


def test_prediction_tracks_hierarchical_simulator(benchmark, multinode_rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for key, row in multinode_rows["scaling"].items():
        assert abs(row["err"]) < _TOLERANCE, f"{key}: {row['err']:+.1%}"
        # Predictor and simulator agree on the binding resource.
        assert row["bottleneck"] == row["true_bottleneck"], key


def test_capacity_finds_feasible_network_bound_plan(
    benchmark, multinode_rows
):
    """The acceptance criterion: a feasible multi-node serving plan
    whose reported bottleneck is the cross-node fabric, not compute."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    plans = multinode_rows["capacity"]["plans"]
    network_bound = [
        p for p in plans if p["meets_slo"] and p["bottleneck"] == "inter"
    ]
    assert network_bound, "no feasible inter-bound plan found"
    assert all(p["nodes"] == 2 for p in network_bound)
