"""Extension experiment — trace-driven serving simulation beyond M/D/1.

Three scenarios against the same A100-priced DLRM service ladder:

1. **Steady Poisson validation** — in the closed form's home regime
   (batches always fill, healthy pool, random routing) the simulated
   p99 must land within ±30% of the closed-form prediction.
2. **The acceptance gap** — a 5x flash crowd offered at the same mean
   QPS.  The closed form only sees the mean rate, so it accepts the
   plan against the SLO; the simulator replays the spike and measures
   a p99 far past it.  The table records both verdicts explicitly
   (``closed_form_accepts`` / ``simulator_rejects``).
3. **Flash crowd + replica kill** — the same spike with one replica
   killed mid-window: orphans reroute, nothing is lost, and the tail
   degrades further.

The table lands in ``results/serving_sim.json`` through the canonical
writer, so ``repro regress`` bands every metric leaf.
"""

from __future__ import annotations

import json
import os

import pytest

from benchmarks.assets import (
    RESULTS_DIR,
    get_overheads,
    get_registry,
    write_result,
)
from repro.capacity import predict_percentile_latency
from repro.models.dlrm import DLRM_CONFIGS
from repro.serving import (
    ARRIVAL_FLASH_CROWD,
    ARRIVAL_POISSON,
    ArrivalSpec,
    BatchingPolicy,
    FaultInjection,
    ServingSimulator,
    price_dlrm_service,
)
from repro.sweep import SweepEngine

_GPU = "A100"
_MODEL = "DLRM_default"
_BATCH = 8
_REPLICAS = 4
_RHO = 0.40
_NUM_REQUESTS = 16_000
_SEED = 17
#: Agreement required between simulated and closed-form p99 in the
#: validation regime (mirrors tests/test_serving_sim.py).
_TOLERANCE = 0.30
#: The crowd scenario's SLO: generous against the closed form (3x its
#: own p99 prediction) yet far below what the spike really does.
_SLO_HEADROOM = 3.0
_SPIKE_MULTIPLIER = 5.0


@pytest.fixture(scope="module")
def serving_table():
    registry, _ = get_registry(_GPU)
    overheads = get_overheads(_GPU, _MODEL, 2048)
    engine = SweepEngine(
        registries={_GPU: registry},
        overhead_dbs={"individual": overheads},
    )
    service = price_dlrm_service(
        engine, DLRM_CONFIGS[_MODEL], _GPU, _BATCH
    )
    service_us = service.service_us(_BATCH)
    qps = _RHO * _BATCH / service_us * 1e6 * _REPLICAS

    # 1. Steady Poisson in the always-fill regime: the cross-validation
    # point.  The huge timeout makes every batch fill, matching the
    # closed form's fill assumption.
    always_fill = BatchingPolicy(max_batch=_BATCH, timeout_us=1e12)
    steady_spec = ArrivalSpec(
        kind=ARRIVAL_POISSON, qps=qps, num_requests=_NUM_REQUESTS
    )
    steady = ServingSimulator(
        service, _REPLICAS, always_fill, seed=_SEED
    ).run(steady_spec, scenario="steady poisson (always-fill)")
    closed = predict_percentile_latency(
        service_us, _BATCH, qps / _REPLICAS
    )
    ratio = steady.latency_p99_us / closed.total_us

    # 2. The acceptance gap: same mean QPS, but a third of the trace
    # arrives at 5x.  The closed form cannot see the spike.
    slo_us = _SLO_HEADROOM * closed.total_us
    span_us = _NUM_REQUESTS / qps * 1e6
    crowd_spec = ArrivalSpec(
        kind=ARRIVAL_FLASH_CROWD,
        qps=qps,
        num_requests=_NUM_REQUESTS,
        spike_start_us=span_us / 3.0,
        spike_duration_us=span_us / 3.0,
        spike_multiplier=_SPIKE_MULTIPLIER,
    )
    realistic = BatchingPolicy(max_batch=_BATCH, timeout_us=1000.0)
    crowd = ServingSimulator(
        service, _REPLICAS, realistic, seed=_SEED
    ).run(crowd_spec, scenario="5x flash crowd")

    # 3. The same crowd with a replica killed mid-spike.
    faults = FaultInjection(kill_replica=0, kill_at_us=span_us / 2.0)
    killed = ServingSimulator(
        service, _REPLICAS, realistic, faults=faults, seed=_SEED
    ).run(crowd_spec, scenario="5x flash crowd + replica kill")

    table = {
        "gpu": _GPU,
        "model": _MODEL,
        "max_batch": _BATCH,
        "replicas": _REPLICAS,
        "offered_qps": qps,
        "service_us": service_us,
        "validation": {
            "rho": _RHO,
            "closed_form_p99_us": closed.total_us,
            "simulated_p99_us": steady.latency_p99_us,
            "ratio": ratio,
            "tolerance": _TOLERANCE,
        },
        "acceptance_gap": {
            "slo_us": slo_us,
            "closed_form_p99_us": closed.total_us,
            "closed_form_accepts": bool(closed.total_us <= slo_us),
            "flash_crowd_p99_us": crowd.latency_p99_us,
            "simulator_rejects": bool(crowd.latency_p99_us > slo_us),
        },
        "scenarios": {
            "steady": steady.to_dict(),
            "flash_crowd": crowd.to_dict(),
            "flash_crowd_kill": killed.to_dict(),
        },
    }
    write_result("serving_sim", table)
    return table


class TestServingSim:
    def test_steady_poisson_cross_validates(self, serving_table):
        validation = serving_table["validation"]
        ratio = validation["ratio"]
        assert 1 - _TOLERANCE <= ratio <= 1 + _TOLERANCE, (
            f"simulated p99 {validation['simulated_p99_us']:.0f} us vs "
            f"closed-form {validation['closed_form_p99_us']:.0f} us "
            f"(ratio {ratio:.3f})"
        )

    def test_closed_form_accepts_what_the_simulator_rejects(
        self, serving_table
    ):
        gap = serving_table["acceptance_gap"]
        assert gap["closed_form_accepts"] is True
        assert gap["simulator_rejects"] is True
        assert gap["flash_crowd_p99_us"] > gap["slo_us"]

    def test_every_request_is_accounted_for(self, serving_table):
        for scenario in serving_table["scenarios"].values():
            assert (
                scenario["completed"] + scenario["dropped"]
                == scenario["num_requests"]
            )

    def test_kill_degrades_but_loses_nothing(self, serving_table):
        crowd = serving_table["scenarios"]["flash_crowd"]
        killed = serving_table["scenarios"]["flash_crowd_kill"]
        assert killed["dropped"] == 0
        assert killed["latency_p99_us"] >= crowd["latency_p99_us"]

    def test_results_table_written(self, serving_table):
        path = os.path.join(RESULTS_DIR, "serving_sim.json")
        with open(path, encoding="utf-8") as f:
            payload = json.load(f)
        assert payload["validation"]["ratio"] == (
            serving_table["validation"]["ratio"]
        )
        assert set(payload["scenarios"]) == {
            "steady", "flash_crowd", "flash_crowd_kill"
        }
