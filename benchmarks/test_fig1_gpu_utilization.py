"""Figure 1 — GPU utilization of six DL models on the simulated V100.

Paper shape: ResNet-50 / Inception-V3 / Transformer sit near 100% at
every common batch size; the three DLRMs sit substantially lower and
climb with batch size.
"""

from __future__ import annotations

import pytest

from benchmarks.assets import get_device, get_graph, write_result
from repro.models import FIGURE1_BATCH_SIZES
from repro.trace import trace_breakdown


def _utilization(model: str, batch: int) -> float:
    device = get_device("V100")
    run = device.run(
        get_graph(model, batch), iterations=3, batch_size=batch,
        with_profiler=True, warmup=1,
    )
    return trace_breakdown(run.trace).gpu_utilization


@pytest.fixture(scope="module")
def figure1_table():
    table = {
        model: {batch: _utilization(model, batch) for batch in batches}
        for model, batches in FIGURE1_BATCH_SIZES.items()
    }
    write_result("fig1_gpu_utilization", table)
    print("\nFigure 1 — GPU utilization (V100):")
    for model, row in table.items():
        cells = " ".join(f"{b}:{u:6.1%}" for b, u in row.items())
        print(f"  {model:14s} {cells}")
    return table


def test_fig1_gpu_utilization(benchmark, figure1_table):
    """Regenerate Figure 1 and check its qualitative shape."""
    benchmark.pedantic(
        lambda: _utilization("DLRM_default", 512), rounds=1, iterations=1
    )

    dlrm = [m for m in figure1_table if m.startswith("DLRM")]
    dense = [m for m in figure1_table if not m.startswith("DLRM")]

    # CV/NLP models: ~100% utilization at every batch size.
    for model in dense:
        for util in figure1_table[model].values():
            assert util > 0.95, f"{model} should be ~100% utilized"

    # DLRMs: substantially lower at small batch, increasing with batch.
    for model in dlrm:
        series = list(figure1_table[model].values())
        assert series[0] < 0.85, f"{model} must show idle time at b=512"
        assert series[0] < series[-1], f"{model} utilization must rise"

    # The contrast the paper leads with.
    worst_dense = min(min(figure1_table[m].values()) for m in dense)
    best_dlrm_small = max(figure1_table[m][512] for m in dlrm)
    assert best_dlrm_small < worst_dense
