"""Benchmark-harness configuration."""

import sys
from pathlib import Path

# Make the sibling `assets` module importable as `benchmarks.assets`
# regardless of how pytest was invoked.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
