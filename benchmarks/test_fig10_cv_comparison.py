"""Figure 10 — ResNet-50 / Inception-V3: ours vs Habitat vs MLPredict.

Paper shape: our model achieves comparable-or-better errors than both
comparators on compute-bound CV models across the three GPUs, with
MLPredict blowing up on configurations outside its pretrained coverage
(batch 64, Inception's 1x7/7x1 convolutions).
"""

from __future__ import annotations

import pytest

from benchmarks.assets import (
    CV_BATCHES,
    CV_MODELS,
    get_device,
    get_graph,
    get_registry,
    get_truth,
    write_result,
)
from repro.baselines import HabitatPredictor, MLPredictPredictor
from repro.e2e import predict_e2e
from repro.hardware import PAPER_GPUS
from repro.models import build_model
from repro.overheads import OverheadDatabase


def _our_error(gpu_name: str, model: str, batch: int) -> float:
    registry, _ = get_registry(gpu_name, cv=True)
    graph = get_graph(model, batch)
    device = get_device(gpu_name)
    prof = device.run(graph, iterations=3, batch_size=batch,
                      with_profiler=True, warmup=1)
    db = OverheadDatabase.from_trace(prof.trace)
    truth = get_truth(gpu_name, model, batch, iterations=3)
    pred = predict_e2e(graph, registry, db)
    return (pred.total_us - truth.mean_e2e_us) / truth.mean_e2e_us


def _habitat_error(gpu_name: str, model: str, batch: int) -> float:
    # Habitat predicts cross-GPU: measure on a different origin device.
    origin_name = "P100" if gpu_name == "V100" else "V100"
    habitat = HabitatPredictor(get_device(origin_name), PAPER_GPUS[gpu_name])
    truth = get_truth(gpu_name, model, batch, iterations=3)
    pred = habitat.predict_e2e_us(get_graph(model, batch))
    return (pred - truth.mean_e2e_us) / truth.mean_e2e_us


def _mlpredict_error(predictor, gpu_name: str, model: str, batch: int) -> float:
    truth = get_truth(gpu_name, model, batch, iterations=3)
    pred = predictor.predict_e2e_us(get_graph(model, batch), batch)
    return (pred - truth.mean_e2e_us) / truth.mean_e2e_us


@pytest.fixture(scope="module")
def figure10():
    table = {}
    for gpu_name in PAPER_GPUS:
        rows = {}
        for model in CV_MODELS:
            predictor = MLPredictPredictor(
                get_device(gpu_name),
                lambda b, m=model: build_model(m, b),
                coverage=(2, 4, 8, 16, 32),
            )
            for batch in CV_BATCHES:
                rows[f"{model}@{batch}"] = {
                    "ours": _our_error(gpu_name, model, batch),
                    "habitat": _habitat_error(gpu_name, model, batch),
                    "mlpredict": _mlpredict_error(
                        predictor, gpu_name, model, batch
                    ),
                }
        table[gpu_name] = rows
    write_result("fig10_cv_comparison", table)
    print("\nFigure 10 — E2E error on CV models:")
    for gpu, rows in table.items():
        print(f"  [{gpu}]")
        for key, row in rows.items():
            print(
                f"    {key:18s} ours={row['ours']:+7.1%} "
                f"habitat={row['habitat']:+7.1%} "
                f"mlpredict={row['mlpredict']:+7.1%}"
            )
    return table


def test_fig10_ours_accurate_on_cv(benchmark, figure10):
    """Our general model also covers compute-bound CV workloads."""
    benchmark.pedantic(
        lambda: _our_error("V100", "resnet50", 16), rounds=1, iterations=1
    )
    for gpu, rows in figure10.items():
        for key, row in rows.items():
            assert abs(row["ours"]) < 0.25, f"{gpu}/{key}: {row['ours']:.1%}"


def test_fig10_ours_comparable_or_better(benchmark, figure10):
    """Ours matches or beats both comparators on (gm of) each panel."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.metrics import geomean

    for gpu, rows in figure10.items():
        ours = geomean([max(abs(r["ours"]), 1e-4) for r in rows.values()])
        habitat = geomean([max(abs(r["habitat"]), 1e-4) for r in rows.values()])
        mlpredict = geomean(
            [max(abs(r["mlpredict"]), 1e-4) for r in rows.values()]
        )
        # "Comparable accuracy": within a few points of each comparator
        # (both stand-ins are at their best on ~100%-utilization CNNs).
        assert ours <= habitat + 0.04
        assert ours <= mlpredict + 0.04


def test_fig10_mlpredict_fails_out_of_coverage(benchmark, figure10):
    """MLPredict shows the paper's blow-up at uncovered batch sizes."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    blowups = [
        abs(rows[f"{model}@64"]["mlpredict"])
        for rows in figure10.values()
        for model in CV_MODELS
    ]
    assert max(blowups) > 0.40
