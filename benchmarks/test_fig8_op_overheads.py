"""Figure 8 — T2/T3/T5 statistics of the most dominating ops (V100).

Paper shape: each overhead type has clear per-op levels (e.g. the
LookupFunction prologue is far heavier than aten::relu's), but for a
fixed op the statistics do not trend with model or batch size.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.assets import DLRM_BATCHES, DLRM_MODELS, get_profiled, write_result
from repro.overheads import extract_overhead_samples, remove_outliers
from repro.simulator.host import T2, T3, T5


def _per_op_means(model: str, batch: int) -> dict:
    samples = extract_overhead_samples(get_profiled("V100", model, batch).trace)
    out = {}
    for op_name, per_type in samples.items():
        out[op_name] = {
            otype: float(np.mean(remove_outliers(values)))
            for otype, values in per_type.items()
            if otype in (T2, T3, T5) and values
        }
    return out


@pytest.fixture(scope="module")
def figure8():
    table = {
        model: {batch: _per_op_means(model, batch) for batch in DLRM_BATCHES}
        for model in DLRM_MODELS
    }
    write_result("fig8_op_overheads", table)

    # Print the 10 most dominating ops by T2 (like the paper's panels).
    pooled: dict[str, list[float]] = {}
    for model in table.values():
        for per_batch in model.values():
            for op, per_type in per_batch.items():
                if T2 in per_type:
                    pooled.setdefault(op, []).append(per_type[T2])
    ranked = sorted(pooled.items(), key=lambda kv: -np.mean(kv[1]))[:10]
    print("\nFigure 8 — top-10 ops by mean T2 (µs, V100, pooled):")
    for op, values in ranked:
        print(f"  {op:26s} T2={np.mean(values):6.1f}")
    return table


def test_fig8_op_levels_differ(benchmark, figure8):
    """T2 is strongly op-dependent (LookupFunction >> aten::relu)."""
    benchmark.pedantic(lambda: _per_op_means("DLRM_default", 512),
                       rounds=1, iterations=1)
    t2 = figure8["DLRM_default"][2048]
    assert t2["LookupFunction"][T2] > 2.5 * t2["aten::relu"][T2]


def test_fig8_size_independence(benchmark, figure8):
    """For a fixed op, T2/T3/T5 do not trend with batch size."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for model in DLRM_MODELS:
        for op in ("aten::linear", "AddmmBackward0", "aten::relu"):
            for otype in (T2, T3):
                values = [
                    figure8[model][batch][op][otype]
                    for batch in DLRM_BATCHES
                    if op in figure8[model][batch]
                    and otype in figure8[model][batch][op]
                ]
                if len(values) < 2:
                    continue
                spread = (max(values) - min(values)) / np.mean(values)
                assert spread < 0.6, (
                    f"{model}/{op}/{otype} trends with batch: {values}"
                )


def test_fig8_model_independence(benchmark, figure8):
    """For a fixed op and type, means agree across DLRM variants."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for op in ("aten::linear", "AddmmBackward0"):
        means = []
        for model in DLRM_MODELS:
            values = [
                figure8[model][batch][op][T2]
                for batch in DLRM_BATCHES
                if op in figure8[model][batch]
            ]
            means.append(np.mean(values))
        spread = (max(means) - min(means)) / np.mean(means)
        assert spread < 0.4, f"{op} T2 differs across models: {means}"
