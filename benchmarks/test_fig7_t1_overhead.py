"""Figure 7 — T1 overhead mean/std across models and batch sizes (V100).

Paper shape: T1 means cluster around 8 µs for every model and batch
size — the evidence for model- and size-independence of the
between-ops overhead.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.assets import DLRM_BATCHES, DLRM_MODELS, get_profiled, write_result
from repro.overheads import extract_overhead_samples, remove_outliers
from repro.simulator.host import T1


def _t1_stats(model: str, batch: int) -> tuple[float, float]:
    samples = extract_overhead_samples(get_profiled("V100", model, batch).trace)
    t1 = [v for per in samples.values() for v in per.get(T1, [])]
    t1 = remove_outliers(t1)
    return float(np.mean(t1)), float(np.std(t1))


@pytest.fixture(scope="module")
def figure7():
    table = {
        model: {batch: _t1_stats(model, batch) for batch in DLRM_BATCHES}
        for model in DLRM_MODELS
    }
    write_result(
        "fig7_t1_overhead",
        {m: {b: {"mean": v[0], "std": v[1]} for b, v in row.items()}
         for m, row in table.items()},
    )
    print("\nFigure 7 — T1 overhead mean±std (µs, V100):")
    for model, row in table.items():
        cells = " ".join(f"{b}:{m:.1f}±{s:.1f}" for b, (m, s) in row.items())
        print(f"  {model:13s} {cells}")
    return table


def test_fig7_t1_model_and_size_independent(benchmark, figure7):
    """All T1 means cluster tightly around a common value (~8 µs)."""
    benchmark.pedantic(lambda: _t1_stats("DLRM_default", 512),
                       rounds=1, iterations=1)
    means = [m for row in figure7.values() for m, _ in row.values()]
    overall = float(np.mean(means))
    assert 5.0 < overall < 14.0
    for mean in means:
        assert abs(mean - overall) / overall < 0.25, (
            f"T1 mean {mean:.2f} deviates from overall {overall:.2f}"
        )
