"""Sweep-engine speedup — the batched/cached pipeline's perf baseline.

A 16-point DLRM batch-size sweep is the canonical what-if workload
(Section V-A(a)).  The old pipeline dispatched every kernel through a
scalar model call, one graph at a time, with no dedup or caching; the
sweep engine predicts the whole grid's kernel population in
deduplicated, vectorized batches behind one shared cache.  This
benchmark times both pipelines over identical grids with the same
trained models and enforces the acceptance floor: the sweep path must
be >= 3x faster.
"""

from __future__ import annotations

import time

from benchmarks.assets import get_graph, get_overheads, get_registry, write_result
from repro.graph.transforms import rescale_batch
from repro.simulator.host import T1, T2, T3, T5
from repro.sweep import sweep_batch_sizes

#: 16 batch sizes spanning the DLRM training range.
SWEEP_BATCHES = tuple(128 * i for i in range(1, 17))
RECORDED_BATCH = 2048


def _naive_predict_e2e_us(graph, registry, overheads, t4_us=10.0, gap=1.0):
    """The seed pipeline: scalar per-kernel dispatch, no cache."""
    cpu_time = 0.0
    gpu_time = {}
    for node in graph.nodes:
        name = node.op_name
        cpu_time += overheads.mean_us(name, T1)
        kernels = node.op.kernel_calls()
        if kernels:
            cpu_time += overheads.mean_us(name, T2)
            stream = node.stream
            for ki, kernel in enumerate(kernels):
                t_kernel = registry.model_for(
                    kernel.kernel_type
                ).predict_kernel(kernel)
                current = gpu_time.get(stream, 0.0)
                start = max(current + gap, cpu_time + t4_us / 2.0)
                gpu_time[stream] = start + t_kernel
                cpu_time += t4_us
                if ki < len(kernels) - 1:
                    cpu_time += overheads.mean_us(name, T5)
            cpu_time += overheads.mean_us(name, T3)
        else:
            cpu_time += overheads.mean_us(name, T5)
    return max(cpu_time, max(gpu_time.values(), default=0.0))


def _time_naive(graph, registry, overheads):
    started = time.perf_counter()
    totals = [
        _naive_predict_e2e_us(
            rescale_batch(graph, RECORDED_BATCH, batch), registry, overheads
        )
        for batch in SWEEP_BATCHES
    ]
    return time.perf_counter() - started, totals


def _time_swept(graph, registry, overheads):
    registry.cache_clear()
    started = time.perf_counter()
    result = sweep_batch_sizes(
        graph, RECORDED_BATCH, SWEEP_BATCHES, registry, overheads
    )
    elapsed = time.perf_counter() - started
    return elapsed, [r.prediction.total_us for r in result]


def test_sweep_speedup_floor(benchmark):
    """16-point DLRM sweep: sweep engine >= 3x over scalar dispatch."""
    registry, _ = get_registry("V100")
    graph = get_graph("DLRM_default", RECORDED_BATCH)
    overheads = get_overheads("V100", "DLRM_default", RECORDED_BATCH)

    # Warm both paths once (imports, lazy state), then time.
    _naive_predict_e2e_us(graph, registry, overheads)
    naive_s, naive_totals = _time_naive(graph, registry, overheads)
    swept_s, swept_totals = _time_swept(graph, registry, overheads)
    speedup = naive_s / swept_s
    info = registry.cache_info()

    write_result(
        "sweep_speedup",
        {
            "points": len(SWEEP_BATCHES),
            "naive_seconds": naive_s,
            "sweep_seconds": swept_s,
            "speedup": speedup,
            "cache_hits": info.hits,
            "cache_misses": info.misses,
        },
    )
    print(
        f"\n16-point DLRM sweep: naive {naive_s * 1e3:.1f} ms, "
        f"sweep engine {swept_s * 1e3:.1f} ms -> {speedup:.1f}x "
        f"(cache {info.hits} hits / {info.misses} misses)"
    )

    benchmark.pedantic(
        lambda: _time_swept(graph, registry, overheads), rounds=3, iterations=1
    )

    # Same numbers, much faster.
    for naive_total, swept_total in zip(naive_totals, swept_totals):
        assert swept_total == naive_total
    assert speedup >= 3.0, f"sweep speedup {speedup:.2f}x below the 3x floor"


def test_repeat_sweep_is_nearly_free(benchmark):
    """A re-run over a warmed cache must be far faster still."""
    registry, _ = get_registry("V100")
    graph = get_graph("DLRM_default", RECORDED_BATCH)
    overheads = get_overheads("V100", "DLRM_default", RECORDED_BATCH)

    cold_s, _ = _time_swept(graph, registry, overheads)

    def rerun():
        return sweep_batch_sizes(
            graph, RECORDED_BATCH, SWEEP_BATCHES, registry, overheads
        )

    rerun()
    started = time.perf_counter()
    rerun()
    warm_s = time.perf_counter() - started
    benchmark.pedantic(rerun, rounds=3, iterations=1)
    assert warm_s < cold_s
    assert registry.cache_info().hit_rate > 0.9
