"""Sweep-engine speedup — the batched/cached pipeline's perf baseline.

A 16-point DLRM batch-size sweep is the canonical what-if workload
(Section V-A(a)).  The old pipeline dispatched every kernel through a
scalar model call, one graph at a time, with no dedup or caching; the
sweep engine predicts the whole grid's kernel population in
deduplicated, vectorized batches behind one shared cache.  This
benchmark times both pipelines over identical grids with the same
trained models and enforces the acceptance floor: the sweep path must
be >= 3x faster.

The scale test extends the baseline to a 10⁵-point grid (reorder
transforms × batch sizes × registries × host-efficiency overhead
variants) and enforces the large-grid contracts: the auto-sized cache
keeps the cold full walk above a 95% hit rate, branch-and-bound
pruning plus the forked fan-out beat the serial full walk by >= 4x
wall-clock, parallel records stay byte-identical to serial, and an
incremental re-sweep after one overhead-DB edit reuses every surviving
point of the untouched DBs.  Both tests merge their sections into
``results/sweep_speedup.json``.
"""

from __future__ import annotations

import time

from benchmarks.assets import (
    get_graph,
    get_overheads,
    get_registry,
    merge_result,
)
from repro.baselines import predict_kernel_only_us
from repro.graph.transforms import move_independent_earlier, rescale_batch
from repro.models.dlrm import DLRM_DEFAULT, build_dlrm_graph
from repro.overheads import OverheadDatabase, OverheadStats
from repro.perfmodels import PerfModelRegistry
from repro.simulator.host import T1, T2, T3, T5
from repro.sweep import SweepEngine, parallel_sweep, sweep_batch_sizes

#: 16 batch sizes spanning the DLRM training range.
SWEEP_BATCHES = tuple(128 * i for i in range(1, 17))
RECORDED_BATCH = 2048

#: Scale-grid axes: 20 transforms x 160 batches x 2 registries x 16
#: overhead variants = 102,400 points.
SCALE_BATCHES = tuple(range(64, 64 + 8 * 160, 8))
SCALE_TRANSFORMS = 20
SCALE_DB_FACTORS = tuple(1.0 - 0.025 * i for i in range(16))
SCALE_WORKERS = 2
SCALE_SPEEDUP_FLOOR = 4.0
SCALE_HIT_RATE_FLOOR = 0.95


def _naive_predict_e2e_us(graph, registry, overheads, t4_us=10.0, gap=1.0):
    """The seed pipeline: scalar per-kernel dispatch, no cache."""
    cpu_time = 0.0
    gpu_time = {}
    for node in graph.nodes:
        name = node.op_name
        cpu_time += overheads.mean_us(name, T1)
        kernels = node.op.kernel_calls()
        if kernels:
            cpu_time += overheads.mean_us(name, T2)
            stream = node.stream
            for ki, kernel in enumerate(kernels):
                t_kernel = registry.model_for(
                    kernel.kernel_type
                ).predict_kernel(kernel)
                current = gpu_time.get(stream, 0.0)
                start = max(current + gap, cpu_time + t4_us / 2.0)
                gpu_time[stream] = start + t_kernel
                cpu_time += t4_us
                if ki < len(kernels) - 1:
                    cpu_time += overheads.mean_us(name, T5)
            cpu_time += overheads.mean_us(name, T3)
        else:
            cpu_time += overheads.mean_us(name, T5)
    return max(cpu_time, max(gpu_time.values(), default=0.0))


def _time_naive(graph, registry, overheads):
    started = time.perf_counter()
    totals = [
        _naive_predict_e2e_us(
            rescale_batch(graph, RECORDED_BATCH, batch), registry, overheads
        )
        for batch in SWEEP_BATCHES
    ]
    return time.perf_counter() - started, totals


def _time_swept(graph, registry, overheads):
    registry.cache_clear()
    started = time.perf_counter()
    result = sweep_batch_sizes(
        graph, RECORDED_BATCH, SWEEP_BATCHES, registry, overheads
    )
    elapsed = time.perf_counter() - started
    return elapsed, [r.prediction.total_us for r in result]


def test_sweep_speedup_floor(benchmark):
    """16-point DLRM sweep: sweep engine >= 3x over scalar dispatch."""
    registry, _ = get_registry("V100")
    graph = get_graph("DLRM_default", RECORDED_BATCH)
    overheads = get_overheads("V100", "DLRM_default", RECORDED_BATCH)

    # Warm both paths once (imports, lazy state), then time.
    _naive_predict_e2e_us(graph, registry, overheads)
    naive_s, naive_totals = _time_naive(graph, registry, overheads)
    swept_s, swept_totals = _time_swept(graph, registry, overheads)
    speedup = naive_s / swept_s
    info = registry.cache_info()

    merge_result(
        "sweep_speedup",
        {
            "points": len(SWEEP_BATCHES),
            "naive_seconds": naive_s,
            "sweep_seconds": swept_s,
            "speedup": speedup,
            "cache_hits": info.hits,
            "cache_misses": info.misses,
        },
    )
    print(
        f"\n16-point DLRM sweep: naive {naive_s * 1e3:.1f} ms, "
        f"sweep engine {swept_s * 1e3:.1f} ms -> {speedup:.1f}x "
        f"(cache {info.hits} hits / {info.misses} misses)"
    )

    benchmark.pedantic(
        lambda: _time_swept(graph, registry, overheads), rounds=3, iterations=1
    )

    # Same numbers, much faster.
    for naive_total, swept_total in zip(naive_totals, swept_totals):
        assert swept_total == naive_total
    assert speedup >= 3.0, f"sweep speedup {speedup:.2f}x below the 3x floor"


def test_repeat_sweep_is_nearly_free(benchmark):
    """A re-run over a warmed cache must be far faster still."""
    registry, _ = get_registry("V100")
    graph = get_graph("DLRM_default", RECORDED_BATCH)
    overheads = get_overheads("V100", "DLRM_default", RECORDED_BATCH)

    cold_s, _ = _time_swept(graph, registry, overheads)

    def rerun():
        return sweep_batch_sizes(
            graph, RECORDED_BATCH, SWEEP_BATCHES, registry, overheads
        )

    rerun()
    started = time.perf_counter()
    rerun()
    warm_s = time.perf_counter() - started
    benchmark.pedantic(rerun, rounds=3, iterations=1)
    assert warm_s < cold_s
    assert registry.cache_info().hit_rate > 0.9


def _clone_registry(registry, cache_size):
    """Fresh registry sharing trained models but not cache/counters.

    The deliberately small ``cache_size`` is the point of the scale
    test: the grid's kernel population is ~40% larger, so without
    auto-sizing the cold precompute would thrash the LRU back to
    per-point re-prediction.
    """
    clone = PerfModelRegistry(cache_size=cache_size)
    for kernel_type in registry.kernel_types:
        clone.register(registry.model_for(kernel_type))
    return clone


def _scaled_db(db, factor):
    """A host-efficiency what-if: every overhead mean scaled by ``factor``."""
    return OverheadDatabase(
        {
            op: {
                otype: OverheadStats(st.mean * factor, st.std * factor, st.count)
                for otype, st in per_type.items()
            }
            for op, per_type in db._stats.items()
        }
    )


def _tiny_dlrm_graph():
    """A small DLRM training graph so the 10⁵-point walk stays seconds."""
    tiny = DLRM_DEFAULT.with_overrides(
        name="DLRM_tiny",
        bot_mlp=(32, 16, 8),
        embedding_dim=8,
        num_tables=4,
        rows_per_table=1000,
        top_mlp=(16, 8, 1),
    )
    return build_dlrm_graph(tiny, RECORDED_BATCH)


def _scale_engine(db_factors=SCALE_DB_FACTORS):
    """The 10⁵-point sweep engine plus its recorded graph."""
    base_registry, _ = get_registry("V100")
    base_db = get_overheads("V100", "DLRM_default", RECORDED_BATCH)
    graph = _tiny_dlrm_graph()
    transforms = {"base": (lambda g: g)}
    for node in graph.nodes:
        if len(transforms) >= SCALE_TRANSFORMS:
            break
        nid = node.node_id
        transforms[f"hoist-{nid}"] = (
            lambda g, nid=nid: move_independent_earlier(g, nid)
        )
    engine = SweepEngine(
        registries={
            "V100-a": _clone_registry(base_registry, 4096),
            "V100-b": _clone_registry(base_registry, 4096),
        },
        overhead_dbs={
            f"hostx{factor:.3f}": _scaled_db(base_db, factor)
            for factor in db_factors
        },
        transforms=transforms,
    )
    return engine, graph


def test_scale_sweep_parallel_pruned_incremental(benchmark):
    """10⁵-point grid: pruned fan-out >= 4x serial, byte-identical."""
    engine, graph = _scale_engine()
    grid = (
        len(engine.transforms)
        * len(SCALE_BATCHES)
        * len(engine.registries)
        * len(engine.overhead_dbs)
    )
    assert grid >= 100_000
    # Branch-and-bound cutoff: admit only points that could still beat
    # the kernel-only bound of the 8th-smallest batch.
    cutoff = (
        predict_kernel_only_us(
            rescale_batch(graph, RECORDED_BATCH, SCALE_BATCHES[7]),
            engine.registries["V100-a"],
        )
        * 1.001
    )

    started = time.perf_counter()
    fanned = parallel_sweep(
        engine,
        graph,
        RECORDED_BATCH,
        SCALE_BATCHES,
        workers=SCALE_WORKERS,
        cutoff_us=cutoff,
    )
    fanned_s = time.perf_counter() - started

    started = time.perf_counter()
    serial_pruned = engine.run(
        graph, RECORDED_BATCH, SCALE_BATCHES, cutoff_us=cutoff
    )
    serial_pruned_s = time.perf_counter() - started
    # The fan-out contract: byte-identical records, identical prunes.
    assert fanned.to_json() == serial_pruned.to_json()
    assert fanned.pruned_points == serial_pruned.pruned_points
    assert len(fanned) + fanned.pruned == grid

    # Cold full walk: every point, freshly warmed auto-sized caches.
    for registry in engine.registries.values():
        registry.cache_clear()
    started = time.perf_counter()
    full = engine.run(graph, RECORDED_BATCH, SCALE_BATCHES)
    serial_s = time.perf_counter() - started
    info = full.merged_cache_info()
    speedup = serial_s / fanned_s
    assert len(full) == grid

    # Pruning is admissible: kept points match the full walk exactly,
    # pruned points are provably over the cutoff.
    totals = {r.point: r.prediction.total_us for r in full.records}
    assert all(
        totals[r.point] == r.prediction.total_us for r in fanned.records
    )
    assert all(totals[p] > cutoff for p in fanned.pruned_points)
    del full, totals

    # Incremental re-sweep: edit one overhead DB, reuse the rest.
    previous = engine.run(
        graph,
        RECORDED_BATCH,
        SCALE_BATCHES,
        cutoff_us=cutoff,
        fingerprints=True,
    )
    # Same label (3-decimal format), different content: the realistic
    # "re-profiled DB under the same name" edit.
    edited = list(SCALE_DB_FACTORS)
    edited[-4] = edited[-4] + 0.0004
    engine2, _ = _scale_engine(db_factors=tuple(edited))
    started = time.perf_counter()
    incremental = engine2.run_incremental(
        graph, RECORDED_BATCH, SCALE_BATCHES, previous, cutoff_us=cutoff
    )
    incremental_s = time.perf_counter() - started
    changed = f"hostx{SCALE_DB_FACTORS[-4]:.3f}"
    assert changed == f"hostx{edited[-4]:.3f}"
    expected_reused = sum(
        1 for r in previous.records if r.point.overheads != changed
    )
    assert incremental.reused == expected_reused
    assert incremental.invalidated == grid - expected_reused
    assert len(incremental) == len(previous)

    merge_result(
        "sweep_speedup",
        {
            "scale": {
                "points": grid,
                "workers": SCALE_WORKERS,
                "serial_seconds": serial_s,
                "serial_pruned_seconds": serial_pruned_s,
                "parallel_pruned_seconds": fanned_s,
                "speedup": speedup,
                "speedup_floor": SCALE_SPEEDUP_FLOOR,
                "hit_rate": info.hit_rate,
                "cache_hits": info.hits,
                "cache_misses": info.misses,
                "kept": len(fanned),
                "pruned": fanned.pruned,
                "reused": incremental.reused,
                "invalidated": incremental.invalidated,
                "incremental_seconds": incremental_s,
            }
        },
    )
    print(
        f"\n{grid}-point sweep: serial {serial_s:.2f} s, "
        f"parallel+pruned {fanned_s:.2f} s -> {speedup:.1f}x "
        f"({fanned.pruned} pruned, hit rate {info.hit_rate:.3f}, "
        f"incremental reused {incremental.reused})"
    )

    benchmark.pedantic(
        lambda: parallel_sweep(
            engine,
            graph,
            RECORDED_BATCH,
            SCALE_BATCHES,
            workers=SCALE_WORKERS,
            cutoff_us=cutoff,
        ),
        rounds=1,
        iterations=1,
    )

    assert info.hit_rate >= SCALE_HIT_RATE_FLOOR, (
        f"cold full-walk hit rate {info.hit_rate:.3f} below "
        f"{SCALE_HIT_RATE_FLOOR}"
    )
    assert speedup >= SCALE_SPEEDUP_FLOOR, (
        f"parallel+pruned speedup {speedup:.2f}x below the "
        f"{SCALE_SPEEDUP_FLOOR}x floor"
    )
