"""Table V — geomean/min/max of active, E2E, shared-E2E errors per GPU.

Aggregates the Figure 9 grid exactly as the paper does.  Paper values:
active 4.61% / E2E 7.96% / shared 10.15% overall geomeans; our bar is
that each aggregate stays at or below ~1.5x the paper's, preserving
the ordering active < E2E <= shared.
"""

from __future__ import annotations

import json
import os

import pytest

from benchmarks.assets import RESULTS_DIR, write_result
from repro.metrics import geomean

pytest.importorskip("numpy")

# Depends on fig9 results; import its fixture machinery.
from benchmarks.test_fig9_e2e_prediction import figure9  # noqa: F401


def _aggregate(rows: dict, key: str) -> dict:
    errors = [max(abs(r[key]), 1e-4) for r in rows.values()]
    return {
        "geomean": geomean(errors),
        "min": min(errors),
        "max": max(errors),
    }


@pytest.fixture(scope="module")
def table5(figure9):  # noqa: F811
    table = {}
    all_rows = {}
    for gpu, rows in figure9.items():
        table[gpu] = {
            "active": _aggregate(rows, "active_err"),
            "e2e": _aggregate(rows, "e2e_err"),
            "shared_e2e": _aggregate(rows, "shared_e2e_err"),
        }
        all_rows.update({f"{gpu}/{k}": v for k, v in rows.items()})
    table["Overall"] = {
        "active": _aggregate(all_rows, "active_err"),
        "e2e": _aggregate(all_rows, "e2e_err"),
        "shared_e2e": _aggregate(all_rows, "shared_e2e_err"),
    }
    write_result("table5_e2e_stats", table)
    print("\nTable V — error statistics (geomean / min / max):")
    for gpu, metrics in table.items():
        for name, agg in metrics.items():
            print(
                f"  {gpu:8s} {name:10s} "
                f"{agg['geomean']:6.2%} {agg['min']:6.2%} {agg['max']:6.2%}"
            )
    return table


def test_table5_within_paper_band(benchmark, table5):
    """Overall geomeans land at or below ~1.5x the paper's figures."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    overall = table5["Overall"]
    assert overall["active"]["geomean"] < 0.0461 * 1.5 + 0.02
    assert overall["e2e"]["geomean"] < 0.0796 * 1.5 + 0.02
    assert overall["shared_e2e"]["geomean"] < 0.1015 * 1.5 + 0.02


def test_table5_active_better_than_e2e(benchmark, table5):
    """Active-time prediction is the easier problem, as in the paper."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    overall = table5["Overall"]
    assert overall["active"]["geomean"] <= overall["e2e"]["geomean"] + 0.01
