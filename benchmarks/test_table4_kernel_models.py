"""Table IV — kernel-model prediction error per kernel per GPU.

Reproduces the full table: plain vs enhanced embedding lookup (all
sizes and the large-table subset), concat, memcpy (heuristic), and
GEMM / transpose / tril forward+backward (ML-based).  The paper's bar:
<10% GMAE for every adopted model, enhanced-EL stabilising the error
that the plain model shows on small tables.
"""

from __future__ import annotations

import pytest

from benchmarks.assets import get_device, get_registry, write_result
from repro.hardware import PAPER_GPUS
from repro.metrics import ErrorStats
from repro.microbench import measure_peaks, run_microbenchmark
from repro.ops import KernelType
from repro.perfmodels import (
    ConcatModel,
    EnhancedEmbeddingModel,
    MemcpyModel,
    PlainEmbeddingModel,
)

_EVAL_SCALE = 0.25
_EVAL_SEED = 1234


def _stats(model, records) -> ErrorStats:
    return ErrorStats.from_samples(
        [model.predict_us(r.params) for r in records],
        [r.measured_us for r in records],
    )


def _embedding_rows(gpu_name: str) -> dict:
    device = get_device(gpu_name)
    peaks = measure_peaks(device)
    rows = {}
    for backward, tag in ((False, "EL-F"), (True, "EL-B")):
        kt = KernelType.EMBEDDING_BWD if backward else KernelType.EMBEDDING_FWD
        ds = run_microbenchmark(device, kt, scale=_EVAL_SCALE, seed=_EVAL_SEED)
        large = [r for r in ds.records if r.params["E"] > 100_000]
        for cls, suffix in ((PlainEmbeddingModel, ""), (EnhancedEmbeddingModel, "H")):
            model = cls(device.gpu, peaks, backward=backward)
            rows[f"{tag}{suffix}"] = _stats(model, ds.records)
            rows[f"{tag}{suffix}L"] = _stats(model, large)
    for cls, kt, tag in (
        (ConcatModel, KernelType.CONCAT, "concat"),
        (MemcpyModel, KernelType.MEMCPY, "memcpy"),
    ):
        ds = run_microbenchmark(device, kt, scale=_EVAL_SCALE, seed=_EVAL_SEED)
        rows[tag] = _stats(cls(peaks), ds.records)
    return rows


def _ml_rows(gpu_name: str) -> dict:
    device = get_device(gpu_name)
    registry, _ = get_registry(gpu_name)
    rows = {}
    for kt, tag in (
        (KernelType.GEMM, "GEMM"),
        (KernelType.TRANSPOSE, "transpose"),
        (KernelType.TRIL_FWD, "tril-F"),
        (KernelType.TRIL_BWD, "tril-B"),
    ):
        ds = run_microbenchmark(device, kt, scale=_EVAL_SCALE, seed=_EVAL_SEED)
        rows[tag] = _stats(registry.model_for(kt), ds.records)
    return rows


@pytest.fixture(scope="module")
def table4():
    table = {}
    for gpu_name in PAPER_GPUS:
        rows = _embedding_rows(gpu_name)
        rows.update(_ml_rows(gpu_name))
        table[gpu_name] = {
            k: {"gmae": v.gmae, "mean": v.mean, "std": v.std}
            for k, v in rows.items()
        }
    write_result("table4_kernel_models", table)
    print("\nTable IV — kernel prediction error (GMAE / mean / std):")
    kernels = list(next(iter(table.values())))
    for kernel in kernels:
        cells = "  ".join(
            f"{gpu}: {table[gpu][kernel]['gmae']:6.2%}" for gpu in table
        )
        print(f"  {kernel:10s} {cells}")
    return table


def test_table4_all_adopted_models_under_10pct(benchmark, table4):
    """Every model the paper adopts stays under ~10% GMAE."""
    benchmark.pedantic(lambda: _ml_rows("V100"), rounds=1, iterations=1)
    adopted = ("EL-FH", "EL-BH", "concat", "memcpy",
               "GEMM", "transpose", "tril-F", "tril-B")
    for gpu, rows in table4.items():
        for kernel in adopted:
            assert rows[kernel]["gmae"] < 0.125, (
                f"{kernel} on {gpu}: {rows[kernel]['gmae']:.2%}"
            )


def test_table4_enhanced_beats_plain_on_small_tables(benchmark, table4):
    """Plain EL degrades on small tables; the enhanced variant fixes it."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for gpu, rows in table4.items():
        # Plain model: large-table subset clearly better than all-sizes.
        assert rows["EL-FL"]["gmae"] <= rows["EL-F"]["gmae"]
        # Enhanced model improves the all-sizes mean error.
        assert rows["EL-FH"]["mean"] <= rows["EL-F"]["mean"]
        assert rows["EL-BH"]["mean"] <= rows["EL-B"]["mean"]


def test_table4_errors_correlate_across_gpus(benchmark, table4):
    """Paper: 'errors of our kernel models correlate across devices'."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    gpus = list(table4)
    for kernel in ("GEMM", "transpose", "memcpy"):
        values = [table4[g][kernel]["gmae"] for g in gpus]
        assert max(values) < 10 * max(min(values), 0.005)
