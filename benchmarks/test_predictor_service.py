"""Prediction-as-a-service load test — the what-if server's perf baseline.

The service front end (``repro.service``) keeps trained registries and
overhead databases resident, coalesces concurrent requests into
``predict_many`` micro-batches, and memoizes whole-graph answers under
canonical content keys.  This benchmark drives a sustained synthetic
request mix through a running :class:`PredictionService` from eight
client threads and enforces the acceptance floor: warm-cache throughput
must beat the cold single-query rate by >= 5x.

Two phases over the same DLRM what-if mix (three batch sizes):

* **Cold** — an unbatched, memo-disabled server; the kernel LRU is
  cleared before every query, so each one pays the full Algorithm 1
  pipeline (collect -> predict_many -> traverse).  This is the rate a
  stateless CLI invocation would sustain, minus process startup.
* **Warm** — a coalescing server with the memo primed; every client
  request is a graph-level memo hit.  Client threads record exact
  per-request latencies, and every response is checked byte-identical
  to a direct ``predict_e2e`` call *while the pool is under load*.

Throughput, client-side p50/p99 and the deterministic cache counters
land in ``results/predictor_service.json``.  The wall-clock leaves
carry the ``measured_*`` prefix — the live-measure band class that
only rejects order-of-magnitude collapse, because co-tenant noise on
shared hardware swings a threaded server's tail severalfold even
best-of-N; the >= 5x floor below is what actually enforces the perf.
The cache counters are deterministic and banded exactly.
"""

from __future__ import annotations

import threading
import time

from benchmarks.assets import (
    get_graph,
    get_overheads,
    get_registry,
    write_result,
)
from repro.e2e import predict_e2e
from repro.service import PredictionService, WhatIfRequest
from repro.serving import BatchingPolicy

_GPU = "V100"
_MODEL = "DLRM_default"
#: The what-if mix: one graph per serving batch size.
SERVICE_BATCHES = (512, 1024, 2048)
#: Overheads are profiled once at the largest batch (CLI convention).
RECORDED_BATCH = 2048
#: Cold queries, cycling the mix; each clears the kernel LRU first.
COLD_QUERIES = 9
#: Warm load: clients x requests-per-client synchronous submissions,
#: repeated for WARM_WAVES waves; the recorded wave is the one with
#: the lowest exact p99 (best-of-N filters co-tenant noise spikes).
WARM_CLIENTS = 8
WARM_REQUESTS_PER_CLIENT = 150
WARM_WAVES = 3
#: Acceptance floor: warm throughput over cold single-query rate.
WARM_SPEEDUP_FLOOR = 5.0
#: Coalescing policy under load (cap well above the client count so
#: only the timeout seals; 200 us keeps batches sub-millisecond).
WARM_POLICY = BatchingPolicy(max_batch=16, timeout_us=200.0)


def _assets():
    registry, _ = get_registry(_GPU)
    overheads = get_overheads(_GPU, _MODEL, RECORDED_BATCH)
    graphs = {b: get_graph(_MODEL, b) for b in SERVICE_BATCHES}
    return registry, overheads, graphs


def _request_mix(graphs, count):
    """``count`` requests cycling round-robin over the graph mix."""
    batches = sorted(graphs)
    return [
        WhatIfRequest(graph=graphs[batches[i % len(batches)]])
        for i in range(count)
    ]


def _time_cold(registry, overheads, graphs):
    """Single-query rate with nothing resident between queries.

    Best of :data:`WARM_WAVES` passes, symmetric with the warm phase,
    so the speedup ratio compares two noise-filtered measurements.
    """
    requests = _request_mix(graphs, COLD_QUERIES)
    with PredictionService(
        registries={_GPU: registry},
        overhead_dbs={"individual": overheads},
        batching=BatchingPolicy(max_batch=1, timeout_us=0.0),
        workers=1,
        memo_entries=0,
    ) as service:
        passes = []
        for _ in range(WARM_WAVES):
            started = time.perf_counter()
            for request in requests:
                registry.cache_clear()
                service.predict(request)
            passes.append(time.perf_counter() - started)
    return min(passes)


def _percentile(latencies, fraction):
    """Nearest-rank percentile of a sorted latency list (seconds)."""
    rank = min(len(latencies) - 1, int(fraction * len(latencies)))
    return latencies[rank]


def test_service_warm_throughput_floor(benchmark):
    """8-client warm load: memoized server >= 5x the cold query rate."""
    registry, overheads, graphs = _assets()
    expected = {
        batch: predict_e2e(graph, registry, overheads).to_dict()
        for batch, graph in graphs.items()
    }

    cold_s = _time_cold(registry, overheads, graphs)
    cold_query_s = cold_s / COLD_QUERIES

    with PredictionService(
        registries={_GPU: registry},
        overhead_dbs={"individual": overheads},
        batching=WARM_POLICY,
        workers=WARM_CLIENTS,
    ) as service:
        # Prime: one miss per unique canonical key.
        for batch in SERVICE_BATCHES:
            service.predict(WhatIfRequest(graph=graphs[batch]))

        failures: list[str] = []
        lock = threading.Lock()

        def load_once() -> tuple[float, list[float]]:
            """One 8-client wave; returns wall time + sorted latencies."""
            latencies: list[float] = []
            barrier = threading.Barrier(WARM_CLIENTS)

            def client() -> None:
                order = [
                    SERVICE_BATCHES[i % len(SERVICE_BATCHES)]
                    for i in range(WARM_REQUESTS_PER_CLIENT)
                ]
                requests = [
                    (batch, WhatIfRequest(graph=graphs[batch]))
                    for batch in order
                ]
                mine: list[float] = []
                barrier.wait()
                for batch, request in requests:
                    t0 = time.perf_counter()
                    response = service.predict(request)
                    mine.append(time.perf_counter() - t0)
                    # Byte-identity while the pool is under load.
                    if response.prediction.to_dict() != expected[batch]:
                        with lock:
                            failures.append(f"batch {batch} diverged")
                with lock:
                    latencies.extend(mine)

            threads = [
                threading.Thread(target=client)
                for _ in range(WARM_CLIENTS)
            ]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - started
            return elapsed, sorted(latencies)

        # Wall-clock tails on a shared machine swing with co-tenant
        # noise; best-of-N filters the spikes so the banded p50/p99
        # track the server, not the neighbours.
        waves = [load_once() for _ in range(WARM_WAVES)]
        stats = service.stats()

    assert failures == []
    total = WARM_CLIENTS * WARM_REQUESTS_PER_CLIENT
    assert all(len(lats) == total for _, lats in waves)
    warm_s, latencies = min(
        waves, key=lambda wave: _percentile(wave[1], 0.99)
    )
    warm_qps = total / warm_s
    cold_qps = COLD_QUERIES / cold_s
    warm_speedup = warm_qps / cold_qps
    p50_s = _percentile(latencies, 0.50)
    p99_s = _percentile(latencies, 0.99)

    # Every warm request hit the memo primed beforehand; the counters
    # are deterministic and banded exactly.
    assert stats.memo.hits == total * WARM_WAVES
    assert stats.memo.misses == len(SERVICE_BATCHES)
    # The server's histogram approximates the client-side median to
    # within one geometric bucket (ratio 2); client latency also
    # includes the submit/wakeup hop, so allow it on the high side.
    combined = sorted(lat for _, lats in waves for lat in lats)
    histogram_p50_s = stats.latency["p50_us"] / 1e6
    assert histogram_p50_s <= _percentile(combined, 0.50) * 2.0

    write_result(
        "predictor_service",
        {
            "gpu": _GPU,
            "model": _MODEL,
            "service_batches": list(SERVICE_BATCHES),
            "cold": {
                "queries": COLD_QUERIES,
                "measured_query_seconds": cold_query_s,
                "measured_qps": cold_qps,
            },
            "warm": {
                "clients": WARM_CLIENTS,
                "requests": total,
                "waves": WARM_WAVES,
                "measured_qps": warm_qps,
                "measured_p50_seconds": p50_s,
                "measured_p99_seconds": p99_s,
                "memo_hits": stats.memo.hits,
                "memo_misses": stats.memo.misses,
            },
            "measured_speedup": warm_speedup,
            "warm_speedup_floor": WARM_SPEEDUP_FLOOR,
        },
    )
    print(
        f"\n{total} warm requests from {WARM_CLIENTS} clients: "
        f"{warm_qps:,.0f} qps (p50 {p50_s * 1e6:.0f} us, "
        f"p99 {p99_s * 1e6:.0f} us) vs cold {cold_qps:.1f} qps "
        f"-> {warm_speedup:.0f}x"
    )

    burst = _request_mix(graphs, 64)
    with PredictionService(
        registries={_GPU: registry},
        overhead_dbs={"individual": overheads},
        batching=WARM_POLICY,
        workers=WARM_CLIENTS,
    ) as reservice:
        reservice.predict_all(burst[: len(SERVICE_BATCHES)])
        benchmark.pedantic(
            lambda: reservice.predict_all(burst), rounds=3, iterations=1
        )

    assert warm_speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm throughput {warm_speedup:.2f}x the cold rate, below the "
        f"{WARM_SPEEDUP_FLOOR}x floor"
    )
