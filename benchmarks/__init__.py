"""Paper benchmark harness (makes ``benchmarks.*`` importable alongside ``tests.*``)."""
