"""Figure 11 — batched-embedding fusion co-design case.

The paper replaces a subgraph of per-table ``embedding_bag`` ops with
one batched embedding op on the execution graph and predicts the gain
without launching any job.  We regenerate that what-if and validate the
predicted speedup against the simulated testbed.
"""

from __future__ import annotations

import pytest

from benchmarks.assets import get_device, get_overheads, get_registry, write_result
from repro.codesign import evaluate_embedding_fusion
from repro.models.dlrm import DLRM_DEFAULT, build_dlrm_graph


@pytest.fixture(scope="module")
def fusion_case():
    gpu = "V100"
    registry, _ = get_registry(gpu)
    overheads = get_overheads(gpu, "DLRM_default", 2048)
    device = get_device(gpu)

    rows = {}
    for batch in (512, 2048):
        config = DLRM_DEFAULT.with_overrides(
            fused_embedding=False, name=f"DLRM_unfused_b{batch}"
        )
        unfused = build_dlrm_graph(config, batch)
        report = evaluate_embedding_fusion(unfused, registry, overheads)
        true_before = device.run(unfused, iterations=5, warmup=1).mean_e2e_us
        true_after = device.run(
            report.fused_graph, iterations=5, warmup=1
        ).mean_e2e_us
        rows[batch] = {
            "predicted_speedup": report.speedup,
            "true_speedup": true_before / true_after,
            "overhead_saved_us": report.overhead_saved_us,
            "active_saved_us": report.active_saved_us,
        }
    write_result("fig11_fusion_codesign", rows)
    print("\nFigure 11 — embedding fusion what-if (V100):")
    for batch, row in rows.items():
        print(
            f"  b={batch}: predicted {row['predicted_speedup']:.2f}x, "
            f"true {row['true_speedup']:.2f}x, "
            f"overhead saved {row['overhead_saved_us']:.0f}us"
        )
    return rows


def test_fig11_fusion_predicts_real_speedup(benchmark, fusion_case):
    """The predicted fusion gain tracks the simulated ground truth."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for batch, row in fusion_case.items():
        assert row["predicted_speedup"] > 1.0
        assert row["true_speedup"] > 1.0
        assert row["predicted_speedup"] == pytest.approx(
            row["true_speedup"], rel=0.20
        )


def test_fig11_overhead_savings_dominate_at_small_batch(benchmark, fusion_case):
    """At small batch the win is mostly host overhead removal."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert fusion_case[512]["overhead_saved_us"] > 0
    # Relative benefit shrinks as compute grows with batch.
    assert (
        fusion_case[512]["predicted_speedup"]
        >= fusion_case[2048]["predicted_speedup"] - 0.05
    )
