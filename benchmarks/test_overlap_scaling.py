"""Extension experiment — overlap-aware multi-GPU scaling.

Companion to ``test_multigpu_scaling.py``: the same hybrid-parallel
DLRM, now with the event-driven overlap engine.  Asserted shape: on a
communication-bound plan (PCIe fabric) the overlapped iteration time is
*strictly* below the synchronous baseline; prediction error vs. the
overlap-aware simulator stays within the existing multi-GPU tolerance;
and overlap never makes any configuration slower.  Predicted savings
are recorded under ``results/overlap_scaling.json``.
"""

from __future__ import annotations

import pytest

from benchmarks.assets import (
    get_overheads,
    get_registry,
    write_result,
)
from repro.hardware import TESLA_V100
from repro.models.dlrm import DLRM_DEFAULT
from repro.multigpu import (
    NVLINK,
    PCIE_FABRIC,
    CollectiveModel,
    GroundTruthCollectives,
    MultiGpuSimulator,
    build_multi_gpu_dlrm_plan,
    predict_multi_gpu,
)

_BATCH = 4096
_TOLERANCE = 0.25  # the existing multi-GPU prediction tolerance


@pytest.fixture(scope="module")
def overlap_rows():
    registry, _ = get_registry("V100")
    overheads = get_overheads("V100", "DLRM_default", _BATCH)

    rows = {}
    for fabric in (NVLINK, PCIE_FABRIC):
        for n in (2, 4, 8):
            sync_plan = build_multi_gpu_dlrm_plan(DLRM_DEFAULT, _BATCH, n)
            over_plan = build_multi_gpu_dlrm_plan(
                DLRM_DEFAULT, _BATCH, n, overlap="full"
            )
            model = CollectiveModel.calibrate(
                GroundTruthCollectives(fabric), n
            )
            sync = predict_multi_gpu(sync_plan, registry, overheads, model)
            over = predict_multi_gpu(over_plan, registry, overheads, model)
            # The same split plan under barrier scheduling isolates the
            # scheduling gain from the phase-split overhead.
            over_sync = predict_multi_gpu(
                over_plan, registry, overheads, model, overlap="none"
            )
            truth = MultiGpuSimulator(TESLA_V100, fabric, seed=5).run(
                over_plan, 3
            )
            rows[f"{fabric.name}x{n}"] = {
                "sync_us": sync.iteration_us,
                "overlap_us": over.iteration_us,
                "overlap_plan_sync_us": over_sync.iteration_us,
                "true_overlap_us": truth.iteration_us,
                "saved_fraction": 1.0 - over.iteration_us / sync.iteration_us,
                "sched_saved_fraction": 1.0
                - over.iteration_us / over_sync.iteration_us,
                "hidden_comm_us": over.hidden_comm_us,
                "exposed_comm_us": over.exposed_comm_us,
                "comm_fraction_sync": sync.communication_fraction,
                "comm_fraction_overlap": over.communication_fraction,
                "err": (over.iteration_us - truth.iteration_us)
                / truth.iteration_us,
            }
    write_result("overlap_scaling", rows)
    print("\nOverlap-aware scaling (DLRM_default @ 4096):")
    for key, row in rows.items():
        print(
            f"  {key:10s} sync={row['sync_us'] / 1e3:7.2f}ms "
            f"overlap={row['overlap_us'] / 1e3:7.2f}ms "
            f"saved={row['saved_fraction']:6.1%} "
            f"(sched {row['sched_saved_fraction']:6.1%}) "
            f"hidden={row['hidden_comm_us'] / 1e3:6.2f}ms "
            f"err={row['err']:+6.1%}"
        )
    return rows


def test_overlap_strictly_beats_sync_when_comm_bound(benchmark, overlap_rows):
    """PCIe DLRM is communication-bound: overlap must win outright."""
    registry, _ = get_registry("V100")
    overheads = get_overheads("V100", "DLRM_default", _BATCH)
    plan = build_multi_gpu_dlrm_plan(DLRM_DEFAULT, _BATCH, 4, overlap="full")
    model = CollectiveModel.calibrate(GroundTruthCollectives(PCIE_FABRIC), 4)
    benchmark(lambda: predict_multi_gpu(plan, registry, overheads, model))

    for n in (2, 4, 8):
        row = overlap_rows[f"PCIex{n}"]
        assert row["overlap_us"] < row["sync_us"], f"PCIex{n}: no savings"
        assert row["hidden_comm_us"] > 0.0
        # The sync plan on PCIe is solidly communication-bound.
        assert row["comm_fraction_sync"] > 0.1


def test_overlap_scheduling_never_hurts_same_plan(benchmark, overlap_rows):
    """On the *same* plan, overlap scheduling can only help.

    (Against the 4-phase barrier plan the split plan pays extra phase
    gating, which a fast fabric like NVLink may not recoup — that
    trade-off is exactly what the recorded ``saved_fraction`` shows.)
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for key, row in overlap_rows.items():
        assert (
            row["overlap_us"] <= row["overlap_plan_sync_us"] * (1 + 1e-9)
        ), key
        assert row["sched_saved_fraction"] >= -1e-9, key


def test_overlap_prediction_tracks_overlap_simulator(benchmark, overlap_rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for key, row in overlap_rows.items():
        assert abs(row["err"]) < _TOLERANCE, f"{key}: {row['err']:+.1%}"
