"""Figure 5 — device-time breakdown of three DLRMs @ 2048 on V100.

Paper shape: no single op dominates everywhere; embedding lookups
dominate DLRM_default and DLRM_DDP while DLRM_MLPerf tilts toward
GEMM/Index ops; idle is a visible slice; trivial element-wise ops sum
to a few percent and must not be dropped.
"""

from __future__ import annotations

import pytest

from benchmarks.assets import DLRM_MODELS, get_profiled, write_result
from repro.trace import trace_breakdown


@pytest.fixture(scope="module")
def breakdowns():
    table = {}
    for model in DLRM_MODELS:
        bd = trace_breakdown(get_profiled("V100", model, 2048).trace)
        table[model] = bd.device_time_shares(top_k=19)
    write_result("fig5_breakdown", table)
    print("\nFigure 5 — device-time shares @ 2048 (V100):")
    for model, shares in table.items():
        top = sorted(shares.items(), key=lambda kv: -kv[1])[:8]
        print(f"  {model:13s} " + ", ".join(f"{k}={v:.1%}" for k, v in top))
    return table


def test_fig5_breakdown(benchmark, breakdowns):
    """Regenerate Figure 5 and check the per-model domination pattern."""
    benchmark.pedantic(
        lambda: trace_breakdown(get_profiled("V100", "DLRM_default", 2048).trace),
        rounds=1, iterations=1,
    )

    for model, shares in breakdowns.items():
        assert "Idle" in shares and shares["Idle"] > 0

    def lookup_share(model):
        s = breakdowns[model]
        return s.get("LookupFunction", 0) + s.get("LookupFunctionBackward", 0)

    # DDP is the most embedding-dominated configuration.
    assert lookup_share("DLRM_DDP") > 0.25
    assert lookup_share("DLRM_default") > 0.10
    # MLPerf gives the domination to FC (addmm/linear) instead.
    mlperf = breakdowns["DLRM_MLPerf"]
    gemm_share = mlperf.get("AddmmBackward0", 0) + mlperf.get("aten::linear", 0)
    assert gemm_share > lookup_share("DLRM_MLPerf")
    # Trivial ops (relu & friends) contribute but do not dominate.
    relu = breakdowns["DLRM_default"].get("aten::relu", 0)
    assert 0 < relu < 0.10


def test_fig5_dominating_kernels_cover_paper_list(benchmark, breakdowns):
    """The six dominating kernel families of Section III-A all appear."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    seen = set()
    for shares in breakdowns.values():
        seen |= set(shares)
    for op in ("LookupFunction", "LookupFunctionBackward", "aten::linear",
               "AddmmBackward0", "aten::bmm", "aten::cat", "aten::to",
               "IndexBackward0"):
        assert any(op in s for s in (seen,)), f"{op} missing from breakdown"
