"""Extension experiment — multi-GPU hybrid-parallel DLRM scaling.

Not a paper figure: this regenerates the *future work* the paper
sketches in Sections V-B/VI (collective kernel models + distributed
prediction).  Asserted shape: prediction tracks the multi-GPU
simulator; scaling is sub-linear; balanced sharding beats skewed;
slower fabrics raise the communication share.
"""

from __future__ import annotations

import pytest

from benchmarks.assets import (
    get_graph,
    get_overheads,
    get_registry,
    get_truth,
    write_result,
)
from repro.hardware import TESLA_V100
from repro.models.dlrm import DLRM_DEFAULT
from repro.multigpu import (
    NVLINK,
    PCIE_FABRIC,
    CollectiveModel,
    GroundTruthCollectives,
    MultiGpuSimulator,
    build_multi_gpu_dlrm_plan,
    predict_multi_gpu,
)

_BATCH = 4096


@pytest.fixture(scope="module")
def scaling():
    registry, _ = get_registry("V100")
    overheads = get_overheads("V100", "DLRM_default", _BATCH)
    single = get_truth("V100", "DLRM_default", _BATCH).mean_e2e_us

    rows = {}
    for fabric in (NVLINK, PCIE_FABRIC):
        for n in (2, 4, 8):
            plan = build_multi_gpu_dlrm_plan(DLRM_DEFAULT, _BATCH, n)
            model = CollectiveModel.calibrate(GroundTruthCollectives(fabric), n)
            pred = predict_multi_gpu(plan, registry, overheads, model)
            truth = MultiGpuSimulator(TESLA_V100, fabric, seed=5).run(plan, 3)
            rows[f"{fabric.name}x{n}"] = {
                "predicted_us": pred.iteration_us,
                "true_us": truth.iteration_us,
                "speedup": single / truth.iteration_us,
                "comm_fraction": pred.communication_fraction,
                "err": (pred.iteration_us - truth.iteration_us)
                / truth.iteration_us,
            }
    rows["single_us"] = single
    write_result("multigpu_scaling", rows)
    print("\nMulti-GPU scaling (DLRM_default @ 4096):")
    for key, row in rows.items():
        if key == "single_us":
            continue
        print(
            f"  {key:10s} pred={row['predicted_us'] / 1e3:7.2f}ms "
            f"true={row['true_us'] / 1e3:7.2f}ms err={row['err']:+6.1%} "
            f"speedup={row['speedup']:.2f}x comm={row['comm_fraction']:.1%}"
        )
    return rows


def test_multigpu_prediction_tracks_truth(benchmark, scaling):
    registry, _ = get_registry("V100")
    overheads = get_overheads("V100", "DLRM_default", _BATCH)
    plan = build_multi_gpu_dlrm_plan(DLRM_DEFAULT, _BATCH, 4)
    model = CollectiveModel.calibrate(GroundTruthCollectives(NVLINK), 4)
    benchmark(lambda: predict_multi_gpu(plan, registry, overheads, model))

    for key, row in scaling.items():
        if key == "single_us":
            continue
        assert abs(row["err"]) < 0.25, f"{key}: {row['err']:+.1%}"


def test_multigpu_scaling_sublinear_but_positive(benchmark, scaling):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for fabric in ("NVLink", "PCIe"):
        speedups = [scaling[f"{fabric}x{n}"]["speedup"] for n in (2, 4, 8)]
        assert speedups[0] > 1.0, f"{fabric}: no gain from 2 GPUs"
        assert speedups == sorted(speedups), f"{fabric}: non-monotone"
        assert speedups[-1] < 8.0  # sub-linear


def test_multigpu_pcie_more_comm_bound(benchmark, scaling):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for n in (2, 4, 8):
        assert (
            scaling[f"PCIex{n}"]["comm_fraction"]
            > scaling[f"NVLinkx{n}"]["comm_fraction"]
        )
