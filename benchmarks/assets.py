"""Shared, lazily-built assets for the benchmark harness.

Every experiment needs some of: a simulated testbed per GPU, a trained
kernel-model registry, profiled traces and ground-truth timings.  These
are expensive (minutes), so they are built once per process and cached.
Results tables are also written under ``results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import functools
import os
import zlib

from repro.hardware import ALL_GPUS
from repro.models import build_model
from repro.overheads import OverheadDatabase
from repro.perfmodels import CV_ML_KERNELS, DEFAULT_ML_KERNELS, build_perf_models
from repro.regress import load_result, write_result_file
from repro.simulator import SimulatedDevice

#: Production benchmark settings (documented in EXPERIMENTS.md): a
#: single strong Table II grid point at a substantial sweep scale.
BENCH_SPACE = {
    "num_layers": (4,),
    "num_neurons": (256,),
    "optimizer": ("adam",),
    "learning_rate": (2e-3,),
}
BENCH_EPOCHS = 300
BENCH_SCALE = 0.7

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

DLRM_MODELS = ("DLRM_default", "DLRM_MLPerf", "DLRM_DDP")
DLRM_BATCHES = (512, 1024, 2048, 4096)
CV_MODELS = ("resnet50", "inception_v3")
CV_BATCHES = (16, 32, 64)


@functools.lru_cache(maxsize=None)
def get_device(gpu_name: str) -> SimulatedDevice:
    """The simulated testbed for one GPU (paper trio + A100 extension).

    The seed digest must be process-stable (``hash()`` of a string is
    randomized per interpreter), or every benchmark run measures a
    different testbed and ``results/`` can never be diffed run-to-run.
    """
    seed = 100 + zlib.crc32(gpu_name.encode()) % 50
    return SimulatedDevice(ALL_GPUS[gpu_name], seed=seed)


@functools.lru_cache(maxsize=None)
def get_registry(gpu_name: str, cv: bool = False):
    """Trained kernel-model registry (optionally with the CV kernels)."""
    kernels = CV_ML_KERNELS if cv else DEFAULT_ML_KERNELS
    registry, report = build_perf_models(
        get_device(gpu_name),
        ml_kernels=kernels,
        microbench_scale=BENCH_SCALE,
        space=BENCH_SPACE,
        epochs=BENCH_EPOCHS,
        seed=7,
    )
    return registry, report


@functools.lru_cache(maxsize=None)
def get_graph(model: str, batch: int):
    """A recorded execution graph for one workload."""
    return build_model(model, batch)


@functools.lru_cache(maxsize=None)
def get_profiled(gpu_name: str, model: str, batch: int, iterations: int = 10):
    """Profiled simulated run (trace included)."""
    return get_device(gpu_name).run(
        get_graph(model, batch),
        iterations=iterations,
        batch_size=batch,
        with_profiler=True,
        warmup=2,
    )


@functools.lru_cache(maxsize=None)
def get_truth(gpu_name: str, model: str, batch: int, iterations: int = 10):
    """Unprofiled ground-truth run (the 'actual measured time')."""
    return get_device(gpu_name).run(
        get_graph(model, batch),
        iterations=iterations,
        batch_size=batch,
        warmup=2,
    )


@functools.lru_cache(maxsize=None)
def get_overheads(gpu_name: str, model: str, batch: int) -> OverheadDatabase:
    """Individual-workload overhead database."""
    return OverheadDatabase.from_trace(get_profiled(gpu_name, model, batch).trace)


@functools.lru_cache(maxsize=None)
def get_shared_overheads(gpu_name: str) -> OverheadDatabase:
    """Shared overhead database pooled over the three DLRMs @ 2048."""
    traces = [
        get_profiled(gpu_name, model, 2048).trace for model in DLRM_MODELS
    ]
    return OverheadDatabase.shared(traces)


def write_result(name: str, payload: dict) -> str:
    """Persist one experiment's table under ``results/`` as JSON.

    Every results artifact goes through this one canonical path
    (:mod:`repro.regress.resultsio`): sorted keys, fixed indentation, a
    trailing newline, and a schema-version metadata stamp.  Identical
    payloads therefore produce identical bytes regardless of dict
    construction order or ``PYTHONHASHSEED``, which is what lets
    ``repro regress`` diff results run-to-run.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    write_result_file(path, payload)
    return path


def merge_result(name: str, payload: dict) -> str:
    """Merge ``payload``'s keys into ``results/{name}.json``.

    Lets several tests contribute sections to one results file without
    clobbering each other, whatever order they run in: existing keys
    not in ``payload`` are preserved, matching ones are replaced.  The
    merged file is re-stamped and re-serialized canonically by
    :func:`write_result`.
    """
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    merged = dict(payload)
    if os.path.exists(path):
        merged = {**load_result(path), **payload}
    return write_result(name, merged)
