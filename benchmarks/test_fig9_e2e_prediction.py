"""Figure 9 — E2E per-batch prediction across 3 DLRMs x 4 batches x 3 GPUs.

Regenerates the paper's panels: prediction error of GPU active time
("active"), E2E with individual overheads ("E2E"), E2E with shared
overheads ("shared_E2E"), and the kernel-only baseline, plus the
measured iteration times.  Paper shape: kernel-only catastrophically
underestimates at small batch (up to -78.5%) and converges toward E2E
as utilization rises; E2E errors stay within roughly +/-25%.
"""

from __future__ import annotations

import pytest

from benchmarks.assets import (
    DLRM_BATCHES,
    DLRM_MODELS,
    get_graph,
    get_overheads,
    get_registry,
    get_shared_overheads,
    get_truth,
    write_result,
)
from repro.baselines import predict_kernel_only_us
from repro.e2e import predict_e2e
from repro.hardware import PAPER_GPUS


def _panel(gpu_name: str) -> dict:
    registry, _ = get_registry(gpu_name)
    shared_db = get_shared_overheads(gpu_name)
    rows = {}
    for model in DLRM_MODELS:
        for batch in DLRM_BATCHES:
            graph = get_graph(model, batch)
            truth = get_truth(gpu_name, model, batch)
            own_db = get_overheads(gpu_name, model, batch)
            pred = predict_e2e(graph, registry, own_db)
            pred_shared = predict_e2e(graph, registry, shared_db)
            ko = predict_kernel_only_us(graph, registry)
            rows[f"{model}@{batch}"] = {
                "iteration_ms": truth.mean_e2e_us / 1e3,
                "active_err": (pred.active_us - truth.mean_gpu_active_us)
                / truth.mean_gpu_active_us,
                "e2e_err": (pred.total_us - truth.mean_e2e_us)
                / truth.mean_e2e_us,
                "shared_e2e_err": (pred_shared.total_us - truth.mean_e2e_us)
                / truth.mean_e2e_us,
                "kernel_only_err": (ko - truth.mean_e2e_us)
                / truth.mean_e2e_us,
            }
    return rows


@pytest.fixture(scope="module")
def figure9():
    table = {gpu: _panel(gpu) for gpu in PAPER_GPUS}
    write_result("fig9_e2e_prediction", table)
    print("\nFigure 9 — E2E prediction errors:")
    for gpu, rows in table.items():
        print(f"  [{gpu}]")
        for key, row in rows.items():
            print(
                f"    {key:20s} iter={row['iteration_ms']:7.2f}ms "
                f"active={row['active_err']:+7.1%} e2e={row['e2e_err']:+7.1%} "
                f"shared={row['shared_e2e_err']:+7.1%} "
                f"kernel_only={row['kernel_only_err']:+7.1%}"
            )
    return table


def test_fig9_e2e_errors_bounded(benchmark, figure9):
    """E2E errors stay within the paper's observed band (~+/-25%)."""
    registry, _ = get_registry("V100")
    graph = get_graph("DLRM_default", 2048)
    db = get_overheads("V100", "DLRM_default", 2048)
    benchmark(lambda: predict_e2e(graph, registry, db))

    for gpu, rows in figure9.items():
        for key, row in rows.items():
            assert abs(row["e2e_err"]) < 0.25, f"{gpu}/{key}: {row['e2e_err']:.1%}"
            assert abs(row["active_err"]) < 0.20, (
                f"{gpu}/{key}: {row['active_err']:.1%}"
            )


def test_fig9_kernel_only_fails_at_small_batch(benchmark, figure9):
    """Kernel-only underestimates badly exactly where utilization is low."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.metrics import geomean

    for gpu, rows in figure9.items():
        ko_small, e2e_small = [], []
        for model in DLRM_MODELS:
            small = rows[f"{model}@512"]
            large = rows[f"{model}@4096"]
            # Always an underestimate where utilization is lowest.
            assert small["kernel_only_err"] < -0.05, (
                f"{gpu}/{model}: kernel-only must fail at b=512"
            )
            ko_small.append(abs(small["kernel_only_err"]))
            e2e_small.append(max(abs(small["e2e_err"]), 1e-4))
            # The gap to E2E shrinks as batch (and utilization) grows.
            gap_small = abs(small["kernel_only_err"] - small["e2e_err"])
            gap_large = abs(large["kernel_only_err"] - large["e2e_err"])
            assert gap_small > gap_large
        # Aggregate: kernel-only is far worse than E2E at small batch.
        assert geomean(ko_small) > 2.0 * geomean(e2e_small), (
            f"{gpu}: kernel-only {geomean(ko_small):.1%} vs "
            f"E2E {geomean(e2e_small):.1%}"
        )


def test_fig9_shared_overheads_close_to_individual(benchmark, figure9):
    """Shared overheads cost only a small extra error."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.metrics import geomean

    for gpu, rows in figure9.items():
        indiv = geomean([max(abs(r["e2e_err"]), 1e-4) for r in rows.values()])
        shared = geomean(
            [max(abs(r["shared_e2e_err"]), 1e-4) for r in rows.values()]
        )
        assert shared < indiv + 0.06, f"{gpu}: shared {shared:.2%} vs {indiv:.2%}"
