"""Documentation checks: links, docstring coverage, examples gallery.

Three checks, runnable standalone (CI's docs job) or through
``tests/test_docs.py`` (tier 1):

* ``check_markdown_links`` — every relative link target in the given
  Markdown files must exist on disk (external ``http(s)://`` links and
  pure ``#anchors`` are skipped; no network, no new dependencies).
* ``check_docstrings`` — pydocstyle-equivalent coverage for a package:
  every module, public class and public function/method must carry a
  docstring (D100–D103 in spirit).  Every ``src/repro`` package listed
  in ``DEFAULT_PACKAGES`` is held at 100%.
* ``check_examples_gallery`` — every ``examples/*.py`` script must have
  its own section in ``docs/EXAMPLES.md`` (a heading naming the file),
  so new examples cannot land without gallery documentation.

Usage::

    python tools/check_docs.py            # check the default set
    python tools/check_docs.py --quiet    # exit code only
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown files whose relative links must resolve.
DEFAULT_MARKDOWN = (
    "README.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs/ARCHITECTURE.md",
    "docs/TOPOLOGIES.md",
    "docs/EXAMPLES.md",
)

#: Packages held to 100% docstring coverage — every ``src/repro``
#: package with public API surface.
DEFAULT_PACKAGES = (
    "src/repro/capacity",
    "src/repro/codesign",
    "src/repro/e2e",
    "src/repro/graph",
    "src/repro/models",
    "src/repro/multigpu",
    "src/repro/ops",
    "src/repro/overheads",
    "src/repro/perfmodels",
    "src/repro/simulator",
    "src/repro/sweep",
    "src/repro/trace",
)

#: The examples gallery and the scripts it must cover.
EXAMPLES_GALLERY = "docs/EXAMPLES.md"
EXAMPLES_DIR = "examples"

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL = ("http://", "https://", "mailto:")


def iter_markdown_links(text: str):
    """Yield link targets from ``[text](target)`` Markdown links.

    Skips fenced code blocks so example snippets cannot produce false
    positives.
    """
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        yield from _LINK_RE.findall(line)


def check_markdown_links(
    files=DEFAULT_MARKDOWN, root: Path = REPO_ROOT
) -> list[str]:
    """Return one error string per broken relative link."""
    errors = []
    for name in files:
        path = root / name
        if not path.exists():
            errors.append(f"{name}: file missing")
            continue
        for target in iter_markdown_links(path.read_text(encoding="utf-8")):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                errors.append(f"{name}: broken link -> {target}")
    return errors


def _missing_docstrings(tree: ast.Module, module_name: str) -> list[str]:
    """Names of public defs in ``tree`` lacking docstrings."""
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append(f"{module_name}: module docstring")

    def walk(node, prefix):
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                name = child.name
                if name.startswith("_"):
                    # Private defs (and everything inside them) are
                    # exempt, matching pydocstyle.
                    continue
                qualified = f"{prefix}{name}"
                if ast.get_docstring(child) is None:
                    missing.append(f"{module_name}: {qualified}")
                walk(child, f"{qualified}.")

    walk(tree, "")
    return missing


def check_docstrings(
    packages=DEFAULT_PACKAGES, root: Path = REPO_ROOT
) -> list[str]:
    """Return one error string per public def missing a docstring."""
    errors = []
    for package in packages:
        base = root / package
        if not base.exists():
            errors.append(f"{package}: package missing")
            continue
        for path in sorted(base.rglob("*.py")):
            rel = path.relative_to(root)
            tree = ast.parse(path.read_text(encoding="utf-8"))
            errors.extend(_missing_docstrings(tree, str(rel)))
    return errors


def check_examples_gallery(
    gallery: str = EXAMPLES_GALLERY,
    examples_dir: str = EXAMPLES_DIR,
    root: Path = REPO_ROOT,
) -> list[str]:
    """Return one error string per example script missing from the gallery.

    A script counts as covered only when a gallery heading *is* its
    file name (e.g. ``## quickstart.py``); prose mentions and headings
    that merely contain the name as a substring do not count, so every
    example gets a real section of its own.
    """
    gallery_path = root / gallery
    if not gallery_path.exists():
        return [f"{gallery}: file missing"]
    headings = []
    in_fence = False
    for line in gallery_path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        # '#' lines inside fenced output excerpts are shell comments,
        # not headings — they must not satisfy coverage.
        if not in_fence and line.startswith("#"):
            headings.append(line.lstrip("#").strip())
    errors = []
    for script in sorted((root / examples_dir).glob("*.py")):
        if script.name not in headings:
            errors.append(
                f"{gallery}: no section for {examples_dir}/{script.name}"
            )
    return errors


def main(argv: list[str] | None = None) -> int:
    """Run all three checks; print findings unless ``--quiet``."""
    args = argv if argv is not None else sys.argv[1:]
    quiet = "--quiet" in args
    errors = (
        check_markdown_links()
        + check_docstrings()
        + check_examples_gallery()
    )
    if errors and not quiet:
        for error in errors:
            print(error, file=sys.stderr)
    if not errors and not quiet:
        print(
            f"docs OK: {len(DEFAULT_MARKDOWN)} Markdown files, "
            f"{len(DEFAULT_PACKAGES)} packages at 100% docstrings, "
            "examples gallery complete"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
