"""Documentation checks — thin shim over ``repro.analyze.rules.docs``.

The real checks now live in the analyzer (``repro lint`` runs them as
the ``doc-link`` / ``doc-docstring`` / ``doc-example-gallery`` rules);
this script keeps the historical standalone entry point and import
surface (CI's docs job, ``tests/test_docs.py``) working unchanged.

Usage::

    python tools/check_docs.py            # check the default set
    python tools/check_docs.py --quiet    # exit code only
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analyze.rules.docs import (  # noqa: E402
    DEFAULT_MARKDOWN,
    DEFAULT_PACKAGES,
    EXAMPLES_DIR,
    EXAMPLES_GALLERY,
    check_docstrings,
    check_examples_gallery,
    check_markdown_links,
    iter_markdown_links,
)

__all__ = [
    "DEFAULT_MARKDOWN",
    "DEFAULT_PACKAGES",
    "EXAMPLES_DIR",
    "EXAMPLES_GALLERY",
    "REPO_ROOT",
    "check_docstrings",
    "check_examples_gallery",
    "check_markdown_links",
    "iter_markdown_links",
    "main",
]


def main(argv: list[str] | None = None) -> int:
    """Run all three checks; print findings unless ``--quiet``."""
    args = argv if argv is not None else sys.argv[1:]
    quiet = "--quiet" in args
    errors = (
        check_markdown_links(root=REPO_ROOT)
        + check_docstrings(root=REPO_ROOT)
        + check_examples_gallery(root=REPO_ROOT)
    )
    if errors and not quiet:
        for error in errors:
            print(error, file=sys.stderr)
    if not errors and not quiet:
        print(
            f"docs OK: {len(DEFAULT_MARKDOWN)} Markdown files, "
            f"{len(DEFAULT_PACKAGES)} packages at 100% docstrings, "
            "examples gallery complete"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
